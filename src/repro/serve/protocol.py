"""Wire protocol of the serving frontend: JSON lines over a stream.

One request or response per line, UTF-8 JSON, ``\\n``-terminated — the
same framing the disk cache shards use, so every layer of the system is
greppable.  Requests:

.. code-block:: json

    {"op": "solve", "id": 7, "solver": "dp", "instance": {...},
     "priority": 0}
    {"op": "stats", "id": 8}
    {"op": "perf", "id": 9}
    {"op": "shutdown", "id": 10}

``instance`` is one :func:`repro.batch.instance.instance_to_dict` dict
(the schema-2 element of a batch file).  ``priority`` is optional; lower
drains first.  Responses echo ``id``:

.. code-block:: json

    {"id": 7, "ok": true, "digest": "...", "served": "solve",
     "result": {...}}
    {"id": 8, "ok": true, "stats": {...}}
    {"id": 9, "ok": true, "perf": {"serve": {...}, "kernel": {...}}}
    {"id": 7, "ok": false, "error": "..."}

``served`` records how the request was answered — ``"cache"`` (shared
result cache), ``"coalesced"`` (joined an identical in-flight solve) or
``"solve"`` (scheduled the canonical solve itself).  ``result`` is the
policy's :meth:`~repro.batch.registry.SolverPolicy.result_to_wire` dict;
it is deterministic, so any two requests answered by the same canonical
record serialise byte-identically (the property test suite pins this).
"""

from __future__ import annotations

import json
from typing import Any

from repro.batch.instance import BatchInstance, instance_from_dict
from repro.exceptions import ConfigurationError

__all__ = [
    "MAX_LINE_BYTES",
    "ProtocolError",
    "decode_line",
    "encode_line",
    "parse_solve_request",
]

#: Upper bound on one framed message; a line this long is a protocol
#: violation (or a hostile peer), not a big tree — batch instances of the
#: paper's sizes serialise to a few hundred KiB at most.
MAX_LINE_BYTES = 32 * 1024 * 1024

_OPS = ("solve", "stats", "perf", "shutdown")


class ProtocolError(ConfigurationError):
    """A malformed or oversized protocol message."""


def encode_line(message: dict[str, Any]) -> bytes:
    """Frame one message as a compact JSON line."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one framed message; validates shape and the ``op`` field."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message of {len(line)} bytes exceeds the {MAX_LINE_BYTES}-byte "
            "frame limit"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid JSON frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("protocol messages must be JSON objects")
    op = message.get("op")
    if op is not None and op not in _OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {_OPS}")
    return message


def parse_solve_request(
    message: dict[str, Any]
) -> tuple[BatchInstance, str, int]:
    """Extract ``(instance, solver, priority)`` from a solve request."""
    raw = message.get("instance")
    if not isinstance(raw, dict):
        raise ProtocolError("solve request has no 'instance' object")
    solver = message.get("solver", "dp")
    if not isinstance(solver, str):
        raise ProtocolError("solve request 'solver' must be a string")
    priority = message.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ProtocolError("solve request 'priority' must be an integer")
    return instance_from_dict(raw), solver, priority
