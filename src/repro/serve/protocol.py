"""Wire protocol of the serving frontend: JSON lines over a stream.

One request or response per line, UTF-8 JSON, ``\\n``-terminated — the
same framing the disk cache shards use, so every layer of the system is
greppable.  Requests:

.. code-block:: json

    {"op": "solve", "id": 7, "solver": "dp", "instance": {...},
     "priority": 0}
    {"op": "stats", "id": 8}
    {"op": "perf", "id": 9}
    {"op": "shutdown", "id": 10}
    {"op": "session.open", "id": 11, "instance": {...},
     "kernel": "array", "records": false}
    {"op": "session.delta", "id": 12, "session": "s1",
     "deltas": [{"kind": "add_client", "node": 3, "requests": 2}]}
    {"op": "session.close", "id": 13, "session": "s1"}

``instance`` is one :func:`repro.batch.instance.instance_to_dict` dict
(the schema-2 element of a batch file).  ``priority`` is optional; lower
drains first.  The ``session.*`` family drives the incremental delta
re-solve engine (:mod:`repro.dynamics.incremental`): ``session.open``
cold-solves a power instance and retains its per-subtree fronts,
``session.delta`` applies a batch of churn deltas (the delta grammar of
:func:`repro.dynamics.incremental.delta_from_dict` — ``add_client`` /
``remove_client`` / ``set_requests`` / ``migrate``) and re-solves
incrementally, ``session.close`` releases the retained tables.  Session
requests are stateful and therefore bypass the digest-coalescing path
entirely.  Responses echo ``id``:

.. code-block:: json

    {"id": 7, "ok": true, "digest": "...", "served": "solve",
     "result": {...}}
    {"id": 8, "ok": true, "stats": {...}}
    {"id": 9, "ok": true, "perf": {"serve": {...}, "kernel": {...},
     "sessions": {...}}}
    {"id": 11, "ok": true, "session": "s1", "kernel": "array",
     "result": {"points": [[1.1, 250.0]]}}
    {"id": 12, "ok": true, "session": "s1",
     "result": {"points": [[2.1, 245.0]]},
     "apply": {"deltas": 1, "fronts_reused": 17,
     "fronts_invalidated": 3}}
    {"id": 13, "ok": true, "session": "s1", "closed": true,
     "stats": {...}}
    {"id": 7, "ok": false, "error": "..."}
    {"id": 7, "ok": false, "error": "...", "code": "overloaded"}

Error responses may carry a machine-readable ``code`` alongside the
human-readable ``error`` string.  Every code is *typed* retriable or
not:

``"overloaded"`` (retriable)
    The server shed the request at its ``max_pending`` admission bound —
    nothing was enqueued, retrying elsewhere is safe; the cluster router
    does exactly that.
``"closed"`` (retriable elsewhere)
    The server is shutting down; the router treats it like a shed.
``"timeout"`` (retriable, after backoff)
    The supervised solve overran its ``solve_timeout`` deadline; the
    worker pool was killed and rebuilt and the digest quarantined for a
    TTL.  Safe to retry — a later attempt may succeed once the
    quarantine expires (the overrun may have been load-induced).
``"quarantined"`` (non-retriable)
    The digest previously crashed or hung a solver pool and fails fast
    for the quarantine TTL; retrying re-sends the same poison instance
    and must not be done automatically.

Errors without a ``code`` are request-specific (infeasible instance,
unknown session, ...) and must not be retried verbatim.

``served`` records how the request was answered — ``"cache"`` (shared
result cache), ``"coalesced"`` (joined an identical in-flight solve) or
``"solve"`` (scheduled the canonical solve itself).  ``result`` is the
policy's :meth:`~repro.batch.registry.SolverPolicy.result_to_wire` dict;
it is deterministic, so any two requests answered by the same canonical
record serialise byte-identically (the property test suite pins this).
"""

from __future__ import annotations

import json
from typing import Any

from repro.batch.instance import BatchInstance, instance_from_dict
from repro.exceptions import (
    ConfigurationError,
    QuarantinedError,
    ServerClosedError,
    ServerOverloadedError,
    SolveTimeoutError,
)

__all__ = [
    "CODE_CLOSED",
    "CODE_OVERLOADED",
    "CODE_QUARANTINED",
    "CODE_TIMEOUT",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "decode_line",
    "encode_line",
    "error_code",
    "error_response",
    "parse_session_close",
    "parse_session_delta",
    "parse_session_open",
    "parse_solve_request",
]

#: Upper bound on one framed message; a line this long is a protocol
#: violation (or a hostile peer), not a big tree — batch instances of the
#: paper's sizes serialise to a few hundred KiB at most.
MAX_LINE_BYTES = 32 * 1024 * 1024

_OPS = (
    "solve",
    "stats",
    "perf",
    "shutdown",
    "session.open",
    "session.delta",
    "session.close",
)


class ProtocolError(ConfigurationError):
    """A malformed or oversized protocol message."""


#: ``code`` of an error response shed at the admission bound; safe to
#: retry against another worker (nothing was enqueued server-side).
CODE_OVERLOADED = "overloaded"
#: ``code`` of an error response refused because shutdown began.
CODE_CLOSED = "closed"
#: ``code`` of a supervised solve that overran its deadline; retriable
#: after backoff (the pool was rebuilt, the digest quarantined).
CODE_TIMEOUT = "timeout"
#: ``code`` of a digest failing fast in poison quarantine; NOT retriable.
CODE_QUARANTINED = "quarantined"


def error_code(exc: BaseException) -> str | None:
    """Machine-readable ``code`` for an exception, if it has one."""
    if isinstance(exc, ServerOverloadedError):
        return CODE_OVERLOADED
    if isinstance(exc, ServerClosedError):
        return CODE_CLOSED
    if isinstance(exc, SolveTimeoutError):
        return CODE_TIMEOUT
    if isinstance(exc, QuarantinedError):
        return CODE_QUARANTINED
    return None


def error_response(rid: Any, exc: BaseException) -> dict[str, Any]:
    """The wire form of a failed request: ``error`` plus optional ``code``."""
    response: dict[str, Any] = {"id": rid, "ok": False, "error": str(exc)}
    code = error_code(exc)
    if code is not None:
        response["code"] = code
    return response


def encode_line(message: dict[str, Any]) -> bytes:
    """Frame one message as a compact JSON line."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one framed message; validates shape and the ``op`` field."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message of {len(line)} bytes exceeds the {MAX_LINE_BYTES}-byte "
            "frame limit"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid JSON frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("protocol messages must be JSON objects")
    op = message.get("op")
    if op is not None and op not in _OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {_OPS}")
    return message


def parse_solve_request(
    message: dict[str, Any]
) -> tuple[BatchInstance, str, int]:
    """Extract ``(instance, solver, priority)`` from a solve request."""
    raw = message.get("instance")
    if not isinstance(raw, dict):
        raise ProtocolError("solve request has no 'instance' object")
    solver = message.get("solver", "dp")
    if not isinstance(solver, str):
        raise ProtocolError("solve request 'solver' must be a string")
    priority = message.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ProtocolError("solve request 'priority' must be an integer")
    return instance_from_dict(raw), solver, priority


def parse_session_open(
    message: dict[str, Any]
) -> tuple[BatchInstance, str | None, bool]:
    """Extract ``(instance, kernel, records)`` from a session.open request."""
    raw = message.get("instance")
    if not isinstance(raw, dict):
        raise ProtocolError("session.open request has no 'instance' object")
    kernel = message.get("kernel")
    if kernel is not None and not isinstance(kernel, str):
        raise ProtocolError("session.open 'kernel' must be a string")
    records = message.get("records", False)
    if not isinstance(records, bool):
        raise ProtocolError("session.open 'records' must be a boolean")
    return instance_from_dict(raw), kernel, records


def _session_id(message: dict[str, Any], op: str) -> str:
    sid = message.get("session")
    if not isinstance(sid, str) or not sid:
        raise ProtocolError(f"{op} request needs a 'session' id string")
    return sid


def parse_session_delta(
    message: dict[str, Any]
) -> tuple[str, list[dict[str, Any]]]:
    """Extract ``(session_id, raw_deltas)`` from a session.delta request.

    Delta dicts stay raw here — the server parses them through
    :func:`repro.dynamics.incremental.delta_from_dict`, keeping the wire
    layer free of engine imports.
    """
    sid = _session_id(message, "session.delta")
    raw = message.get("deltas")
    if not isinstance(raw, list) or not all(
        isinstance(d, dict) for d in raw
    ):
        raise ProtocolError(
            "session.delta 'deltas' must be a list of delta objects"
        )
    return sid, raw


def parse_session_close(message: dict[str, Any]) -> str:
    """Extract the session id from a session.close request."""
    return _session_id(message, "session.close")
