"""Async client for the serving frontend (and the `repro client` CLI).

:class:`ServeClient` speaks the JSON-lines protocol of
:mod:`repro.serve.protocol` over one TCP connection.  Requests are
pipelined: ``solve`` calls may be issued concurrently and responses are
matched back by request id, so one client saturates the server's
coalescing window without connection-per-request overhead.

Retry policy: with ``retries=`` set, the typed-*retriable* failures —
``code: "overloaded"``, ``code: "timeout"`` and torn connections
(:class:`ServeConnectionError`, reconnecting transparently) — are
retried with exponential backoff plus jitter, bounded by an overall
``deadline=``.  Request-specific errors (no ``code``, or
``code: "quarantined"``) are never retried: re-sending an infeasible or
poison instance cannot succeed and only adds load.

>>> client = await ServeClient.connect(host, port)   # doctest: +SKIP
>>> response = await client.solve(instance, solver="dp")  # doctest: +SKIP
>>> response["result"]["cost"]                       # doctest: +SKIP
"""

from __future__ import annotations

import asyncio
import contextlib
import random
from collections.abc import Sequence
from typing import Any

from repro.batch.instance import BatchInstance, instance_to_dict
from repro.dynamics.incremental import Delta, delta_to_dict
from repro.exceptions import ConfigurationError, ReproError
from repro.serve.protocol import (
    CODE_OVERLOADED,
    CODE_QUARANTINED,
    CODE_TIMEOUT,
    MAX_LINE_BYTES,
    decode_line,
    encode_line,
)

__all__ = [
    "ServeClient",
    "ServeConnectionError",
    "ServeError",
    "ServeOverloadedError",
    "ServeQuarantinedError",
    "ServeSession",
    "ServeTimeoutError",
]

#: Response codes that are safe to retry (see
#: :mod:`repro.serve.protocol`): the request was shed or timed out
#: server-side without poisoning anything.  ``"quarantined"`` is
#: deliberately absent — re-sending a poison instance must be a human
#: decision.
RETRIABLE_CODES = frozenset({CODE_OVERLOADED, CODE_TIMEOUT})


class ServeError(ReproError):
    """The server answered a request with ``ok: false``.

    :attr:`code` carries the response's machine-readable ``code`` field
    when the server sent one (``"overloaded"`` / ``"closed"``; see
    :mod:`repro.serve.protocol`), else ``None``.
    """

    def __init__(self, message: str, *, code: str | None = None) -> None:
        super().__init__(message)
        self.code = code


class ServeOverloadedError(ServeError):
    """The server shed the request at its admission bound.

    Nothing was enqueued server-side: retrying (against another worker,
    or after a backoff) is always safe.
    """

    def __init__(self, message: str, *, code: str | None = CODE_OVERLOADED) -> None:
        super().__init__(message, code=code)


class ServeTimeoutError(ServeError):
    """The supervised solve overran the server's ``solve_timeout``.

    Retriable after backoff: the worker pool was rebuilt and the digest
    quarantined, so a later attempt may succeed once the quarantine
    expires (the overrun may have been load-induced).
    """

    def __init__(self, message: str, *, code: str | None = CODE_TIMEOUT) -> None:
        super().__init__(message, code=code)


class ServeQuarantinedError(ServeError):
    """The digest is failing fast in poison quarantine.

    NOT retriable: the same instance previously crashed or hung a solver
    pool, so re-sending it automatically would only re-poison the pool.
    """

    def __init__(
        self, message: str, *, code: str | None = CODE_QUARANTINED
    ) -> None:
        super().__init__(message, code=code)


class ServeConnectionError(ServeError):
    """The connection died before (or while) the response arrived.

    Distinct from a request-level error: the peer may have crashed, so
    the request's fate is unknown — the cluster router treats this as a
    worker death and fails over.
    """


def _error_for(error: str, code: str | None) -> ServeError:
    """Typed exception for an ``ok: false`` response's ``code``."""
    if code == CODE_OVERLOADED:
        return ServeOverloadedError(error)
    if code == CODE_TIMEOUT:
        return ServeTimeoutError(error)
    if code == CODE_QUARANTINED:
        return ServeQuarantinedError(error)
    return ServeError(error, code=code)


class ServeSession:
    """Handle on one live server-side session; create via
    :meth:`ServeClient.session`.

    Holds the session id plus the frontier returned by the last
    open/delta round-trip (``points`` pairs, or full ``records`` when the
    session was opened with ``records=True``).
    """

    def __init__(
        self, client: ServeClient, response: dict[str, Any]
    ) -> None:
        self._client = client
        self.session_id: str = response["session"]
        self.kernel: str = response["kernel"]
        self.result: dict[str, Any] = response["result"]
        self.closed = False

    async def delta(
        self, deltas: Sequence[Delta | dict[str, Any]]
    ) -> dict[str, Any]:
        """Apply a batch of deltas; returns the full ``ok: true`` response.

        Accepts :data:`repro.dynamics.incremental.Delta` objects or
        already-encoded wire dicts.  The response carries the re-solved
        frontier under ``result`` and reuse counters under ``apply``;
        ``self.result`` is updated to the new frontier.
        """
        if self.closed:
            raise ServeError(f"session {self.session_id!r} is closed")
        wire = [
            d if isinstance(d, dict) else delta_to_dict(d) for d in deltas
        ]
        response = await self._client._request(
            {
                "op": "session.delta",
                "session": self.session_id,
                "deltas": wire,
            }
        )
        self.result = response["result"]
        return response

    async def close(self) -> dict[str, Any]:
        """Release the server-side tables; returns the session stats dict.

        Idempotent: closing twice returns the stats from the first close.
        """
        if self.closed:
            return self._stats
        response = await self._client._request(
            {"op": "session.close", "session": self.session_id}
        )
        self.closed = True
        self._stats: dict[str, Any] = response["stats"]
        return self._stats

    async def __aenter__(self) -> ServeSession:
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        with contextlib.suppress(ServeError):
            await self.close()


class ServeClient:
    """One pipelined protocol connection; create via :meth:`connect`.

    ``retries``/``backoff``/``deadline`` configure the typed retry
    policy of :meth:`_request` (and hence :meth:`solve` and friends):
    up to ``retries`` re-attempts of *retriable* failures only —
    ``code`` in :data:`RETRIABLE_CODES`, or a torn connection when the
    client was built via :meth:`connect` (it then transparently
    reconnects) — with exponential backoff plus jitter starting at
    ``backoff`` seconds.  ``deadline`` bounds the whole retry schedule:
    no new attempt starts after it.  The defaults (``retries=0``) keep
    the historical single-shot behaviour.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        retries: int = 0,
        backoff: float = 0.05,
        deadline: float | None = None,
    ) -> None:
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {retries}")
        if backoff <= 0:
            raise ConfigurationError(f"backoff must be > 0, got {backoff}")
        if deadline is not None and deadline <= 0:
            raise ConfigurationError(
                f"deadline must be > 0, got {deadline}"
            )
        self._reader = reader
        self._writer = writer
        self._retries = retries
        self._backoff = backoff
        self._deadline = deadline
        # Set by connect(); without them a torn connection cannot be
        # re-established, so connection loss is then non-retriable.
        self._host: str | None = None
        self._port: int | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._closed = False
        self._user_closed = False
        self._conn_lock = asyncio.Lock()
        # Serialises write+drain: concurrent drain() waiters on one
        # transport are unsupported on Python 3.10 (single-waiter assert
        # in FlowControlMixin), and solve_many pipelines heavily.
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        retries: int = 0,
        backoff: float = 0.05,
        deadline: float | None = None,
    ) -> ServeClient:
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES
        )
        client = cls(
            reader, writer, retries=retries, backoff=backoff, deadline=deadline
        )
        client._host = host
        client._port = port
        return client

    async def __aenter__(self) -> ServeClient:
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    async def solve(
        self,
        instance: BatchInstance,
        *,
        solver: str = "dp",
        priority: int = 0,
    ) -> dict[str, Any]:
        """Solve one instance; returns the full ``ok: true`` response.

        The response carries ``digest``, ``served`` (``"cache"`` /
        ``"coalesced"`` / ``"solve"``) and the policy's wire ``result``.
        Raises :class:`ServeError` on an error response.
        """
        return await self._request(
            {
                "op": "solve",
                "solver": solver,
                "priority": priority,
                "instance": instance_to_dict(instance),
            }
        )

    async def solve_many(
        self,
        instances: Sequence[BatchInstance],
        *,
        solver: str = "dp",
        priority: int = 0,
    ) -> list[dict[str, Any]]:
        """Pipeline a whole batch concurrently; responses in input order."""
        return list(
            await asyncio.gather(
                *(
                    self.solve(i, solver=solver, priority=priority)
                    for i in instances
                )
            )
        )

    async def session(
        self,
        instance: BatchInstance,
        *,
        kernel: str | None = None,
        records: bool = False,
    ) -> ServeSession:
        """Open a live incremental session on a power instance.

        The server cold-solves the instance, retains its per-subtree
        fronts, and answers subsequent :meth:`ServeSession.delta` calls
        by re-solving incrementally.  ``kernel`` picks the Pareto kernel
        (``"array"`` / ``"tuple"``; server default otherwise); with
        ``records=True`` responses carry full placement records instead
        of ``(cost, power)`` pairs.
        """
        message: dict[str, Any] = {
            "op": "session.open",
            "instance": instance_to_dict(instance),
            "records": records,
        }
        if kernel is not None:
            message["kernel"] = kernel
        return ServeSession(self, await self._request(message))

    async def stats(self) -> dict[str, Any]:
        """Fetch the server's :class:`~repro.perf.stats.ServeStats` dict."""
        response = await self._request({"op": "stats"})
        return response["stats"]

    async def perf(self) -> dict[str, Any]:
        """Fetch serving counters plus aggregated kernel statistics.

        The ``kernel`` section carries per-solver Pareto-DP counters
        (:class:`~repro.perf.stats.ParetoDPStats`) absorbed from the
        canonical solve records — labels created / generated / rejected
        at merge and AHU-memo hits — each canonical digest counted once.
        """
        response = await self._request({"op": "perf"})
        return response["perf"]

    async def shutdown_server(self) -> None:
        """Ask the server to drain and stop (graceful, server-wide)."""
        await self._request({"op": "shutdown"})

    async def close(self) -> None:
        self._user_closed = True
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        except Exception:
            pass
        # Nothing will ever resolve in-flight requests now; fail them so
        # concurrent waiters (e.g. an aborted solve_many's stragglers)
        # don't hang forever.
        for future in self._pending.values():
            if not future.done():
                future.set_exception(
                    ServeConnectionError("client connection closed")
                )
        self._writer.close()
        with contextlib.suppress(Exception):
            await self._writer.wait_closed()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    async def request_raw(self, message: dict[str, Any]) -> dict[str, Any]:
        """One protocol round-trip; returns the raw response dict.

        Unlike :meth:`solve`/:meth:`stats`, an ``ok: false`` response is
        *returned*, not raised — the cluster router forwards worker
        error responses to its own clients verbatim.  Transport loss
        still raises :class:`ServeConnectionError`.
        """
        if self._closed:
            raise ServeConnectionError("client connection is closed")
        self._next_id += 1
        rid = self._next_id
        message["id"] = rid
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        try:
            async with self._write_lock:
                self._writer.write(encode_line(message))
                await self._writer.drain()
            return await future
        finally:
            self._pending.pop(rid, None)

    async def _request(self, message: dict[str, Any]) -> dict[str, Any]:
        loop = asyncio.get_running_loop()
        give_up_at = (
            None if self._deadline is None else loop.time() + self._deadline
        )
        attempt = 0
        while True:
            failure: ServeError
            try:
                response = await self.request_raw(message)
            except ServeConnectionError as exc:
                if self._user_closed or self._host is None:
                    raise
                failure = exc
            else:
                if response.get("ok"):
                    return response
                error = response.get("error", "request failed")
                code = response.get("code")
                failure = _error_for(error, code)
                if code not in RETRIABLE_CODES:
                    raise failure
            attempt += 1
            if attempt > self._retries:
                raise failure
            delay = self._backoff * (2 ** (attempt - 1))
            # Jitter desynchronises clients retrying the same incident.
            delay *= 0.5 + random.random()
            if give_up_at is not None and loop.time() + delay > give_up_at:
                raise failure
            await asyncio.sleep(delay)
            if self._closed and not self._user_closed:
                try:
                    await self._reconnect()
                except OSError as exc:
                    failure = ServeConnectionError(f"reconnect failed: {exc}")
                    if attempt >= self._retries:
                        raise failure from exc

    async def _reconnect(self) -> None:
        """Re-establish a torn connection (only possible via :meth:`connect`)."""
        if self._host is None or self._port is None:
            raise ServeConnectionError(
                "cannot reconnect: client was not built via connect()"
            )
        async with self._conn_lock:
            if not self._closed or self._user_closed:
                return
            self._reader_task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await self._reader_task
            self._writer.close()
            with contextlib.suppress(Exception):
                await self._writer.wait_closed()
            reader, writer = await asyncio.open_connection(
                self._host, self._port, limit=MAX_LINE_BYTES
            )
            self._reader = reader
            self._writer = writer
            self._closed = False
            self._reader_task = asyncio.get_running_loop().create_task(
                self._read_loop()
            )

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    raise ConnectionError("server closed the connection")
                response = decode_line(line)
                future = self._pending.get(response.get("id"))
                if future is not None and not future.done():
                    future.set_result(response)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._closed = True
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ServeConnectionError(f"connection lost: {exc}")
                    )
