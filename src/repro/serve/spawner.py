"""Worker-spawning backends for the serving cluster.

The cluster router (:mod:`repro.serve.cluster`) never creates workers
itself — it asks a :class:`Spawner`, and talks to whatever comes back
through the uniform :class:`WorkerHandle` surface (one protocol
round-trip per :meth:`~WorkerHandle.request`).  Two backends ship:

* :class:`InProcessSpawner` — each worker is a full
  :class:`~repro.serve.server.BatchServer` living on the current event
  loop, driven through :meth:`~repro.serve.server.BatchServer.dispatch`
  with **no socket anywhere**.  This is the deterministic test backend:
  an entire cluster — routing, shedding, worker death and re-spawn,
  session stickiness — runs inside one pytest process with hundreds of
  simulated clients.  :meth:`~WorkerHandle.kill` simulates abrupt death
  (requests in flight on the dead worker fail with
  :class:`WorkerDiedError`, exactly what a torn TCP connection looks
  like to the router).
* :class:`SubprocessSpawner` — each worker is a real ``repro serve``
  process bound to an ephemeral loopback port, reached through a
  pipelined :class:`~repro.serve.client.ServeClient`.  This is the
  deployment backend (`repro cluster` uses it): workers solve in
  genuinely parallel processes, and :meth:`~WorkerHandle.kill` is a real
  ``SIGKILL``.

Both backends give every worker its **own** result cache; with a
``cache_dir`` configured, each worker persists under
``<cache_dir>/<worker-name>`` — disjoint directories, so the partitioned
digest ownership the router enforces is mirrored on disk and the
advisory-flock contention of a shared ``--cache-dir`` disappears.
"""

from __future__ import annotations

import asyncio
import contextlib
import re
import sys
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.batch.cache import ResultCache
from repro.exceptions import ConfigurationError, ReproError
from repro.serve.client import ServeClient, ServeConnectionError
from repro.serve.server import BatchServer, ConnectionContext

__all__ = [
    "InProcessSpawner",
    "Spawner",
    "SubprocessSpawner",
    "WorkerConfig",
    "WorkerDiedError",
    "WorkerHandle",
]


class WorkerDiedError(ReproError):
    """A request hit a dead (or dying) worker; its fate is unknown.

    The router treats this as a health event: the worker is marked dead,
    a re-spawn is scheduled, and the request fails over to the digest's
    next owner on the ring.
    """


@dataclass(frozen=True)
class WorkerConfig:
    """Shape of one spawned worker (mirrors ``repro serve`` knobs)."""

    #: Admission bound handed to :class:`BatchServer` ``max_pending``.
    max_pending: int | None = None
    #: Micro-batch size bound.
    max_batch: int = 32
    #: Micro-batch linger seconds.
    max_delay: float = 0.002
    #: Per-worker process-pool size (``1`` solves on the drain thread).
    pool_workers: int = 1
    #: In-memory cache capacity per worker.
    lru_size: int = 4096
    #: Disk-store budget per worker (``None`` = unbounded).
    max_disk_entries: int | None = None
    #: Base directory for persistent caches; each worker owns the
    #: disjoint subdirectory ``<cache_dir>/<name>``.  ``None`` keeps
    #: worker caches purely in-memory.
    cache_dir: str | None = None
    #: Pareto-kernel override forwarded to power policies.
    kernel: str | None = None
    #: Wall-clock deadline (seconds) for one supervised solve wave;
    #: ``None`` disables supervision deadlines (crashes still recover).
    solve_timeout: float | None = None

    def worker_cache_dir(self, name: str) -> Path | None:
        """The worker-private persistent store directory (or ``None``)."""
        if self.cache_dir is None:
            return None
        return Path(self.cache_dir) / name


class WorkerHandle(ABC):
    """One live worker, whatever its backend.

    The router holds exactly one handle per ring position and funnels
    every protocol message through :meth:`request`.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    @property
    @abstractmethod
    def alive(self) -> bool:
        """Whether the worker is believed able to serve requests."""

    @abstractmethod
    async def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """One protocol round-trip; returns the *raw* response dict.

        Error responses (``ok: false``) are returned, not raised, so the
        router can inspect ``code`` and forward them verbatim.  Raises
        :class:`WorkerDiedError` when the worker cannot answer at all.
        """

    @abstractmethod
    async def stop(self) -> None:
        """Graceful shutdown: drain in-flight work, then release."""

    @abstractmethod
    async def kill(self) -> None:
        """Abrupt death: in-flight requests on this worker are lost."""


class Spawner(ABC):
    """Factory for :class:`WorkerHandle`\\ s behind one backend."""

    @abstractmethod
    async def spawn(self, name: str, config: WorkerConfig) -> WorkerHandle:
        """Start (or restart) the worker ``name``; returns its handle."""

    async def close(self) -> None:
        """Backend-wide cleanup hook (default: nothing)."""


# ---------------------------------------------------------------------------
# in-process backend (deterministic tests)
# ---------------------------------------------------------------------------
class _InProcessWorker(WorkerHandle):
    """A :class:`BatchServer` on the current loop, spoken to socketlessly."""

    def __init__(self, name: str, server: BatchServer) -> None:
        super().__init__(name)
        self._server = server
        self._ctx = ConnectionContext()
        self._alive = True
        self._inflight: set[asyncio.Task] = set()

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def server(self) -> BatchServer:
        """The underlying server (tests reach in for stats/cache)."""
        return self._server

    async def request(self, message: dict[str, Any]) -> dict[str, Any]:
        if not self._alive:
            raise WorkerDiedError(f"worker {self.name!r} is dead")
        # Run dispatch as a task so kill() can sever in-flight requests
        # the way a torn connection would: the caller sees the worker
        # die, while the server object itself is torn down separately.
        task = asyncio.create_task(self._server.dispatch(dict(message), self._ctx))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)
        try:
            return await asyncio.shield(task)
        except asyncio.CancelledError:
            if not self._alive:
                raise WorkerDiedError(
                    f"worker {self.name!r} died mid-request"
                ) from None
            task.cancel()
            raise

    async def stop(self) -> None:
        self._alive = False
        await self._server.stop()

    async def kill(self) -> None:
        """Simulated crash: fail in-flight requests, abandon the server."""
        if not self._alive:
            return
        self._alive = False
        for task in list(self._inflight):
            task.cancel()
        # Tear the server down in the background the way an exiting
        # process would — the router never waits for a dead worker.
        stop_task = asyncio.get_running_loop().create_task(self._server.stop())
        stop_task.add_done_callback(lambda t: t.exception())


class InProcessSpawner(Spawner):
    """Spawner whose workers live on the calling event loop.

    Deterministic and socket-free: the integration suite drives a whole
    cluster through this backend inside one process.  Respawning a name
    builds a brand-new :class:`BatchServer`; with a ``cache_dir``
    configured the newcomer warm-loads the shard files its predecessor
    owned (same ``<cache_dir>/<name>`` directory).
    """

    def __init__(self) -> None:
        self._workers: dict[str, _InProcessWorker] = {}

    async def spawn(self, name: str, config: WorkerConfig) -> WorkerHandle:
        old = self._workers.get(name)
        if old is not None and old.alive:
            raise ConfigurationError(
                f"worker {name!r} is still alive; kill or stop it first"
            )
        cache_dir = config.worker_cache_dir(name)
        cache = ResultCache(
            config.lru_size,
            cache_dir=cache_dir,
            max_disk_entries=config.max_disk_entries,
        )
        server = BatchServer(
            cache=cache,
            workers=config.pool_workers,
            max_batch=config.max_batch,
            max_delay=config.max_delay,
            max_pending=config.max_pending,
            solve_timeout=config.solve_timeout,
        )
        await server.start()
        worker = _InProcessWorker(name, server)
        self._workers[name] = worker
        return worker

    async def close(self) -> None:
        for worker in self._workers.values():
            if worker.alive:
                await worker.stop()
        self._workers.clear()


# ---------------------------------------------------------------------------
# subprocess backend (real deployment)
# ---------------------------------------------------------------------------
_SERVING_RE = re.compile(r"serving on ([0-9a-fA-F.:\[\]]+):(\d+)")


class _SubprocessWorker(WorkerHandle):
    """A ``repro serve`` child process behind a pipelined client."""

    def __init__(
        self,
        name: str,
        process: asyncio.subprocess.Process,
        client: ServeClient,
        port: int,
    ) -> None:
        super().__init__(name)
        self._process = process
        self._client = client
        self.port = port

    @property
    def alive(self) -> bool:
        return self._process.returncode is None

    async def request(self, message: dict[str, Any]) -> dict[str, Any]:
        if not self.alive:
            raise WorkerDiedError(f"worker {self.name!r} has exited")
        try:
            return await self._client.request_raw(dict(message))
        except (ServeConnectionError, ConnectionError, OSError) as exc:
            raise WorkerDiedError(
                f"worker {self.name!r} unreachable: {exc}"
            ) from exc

    async def stop(self) -> None:
        if self.alive:
            with contextlib.suppress(ReproError, ConnectionError, OSError):
                await self._client.request_raw({"op": "shutdown"})
            try:
                await asyncio.wait_for(self._process.wait(), timeout=30)
            except asyncio.TimeoutError:
                self._process.kill()
                await self._process.wait()
        await self._client.close()

    async def kill(self) -> None:
        if self.alive:
            self._process.kill()
            await self._process.wait()
        await self._client.close()


class SubprocessSpawner(Spawner):
    """Spawner launching real ``repro serve`` worker processes.

    Workers bind ephemeral loopback ports (``--port 0``); the spawner
    parses the announced address from the child's stdout, then connects
    a :class:`ServeClient`.  The child inherits the parent environment,
    so ``PYTHONPATH`` / ``REPRO_POWER_KERNEL`` propagate.
    """

    def __init__(self, host: str = "127.0.0.1", start_timeout: float = 30.0) -> None:
        self.host = host
        self.start_timeout = start_timeout
        self._workers: dict[str, _SubprocessWorker] = {}

    def _command(self, name: str, config: WorkerConfig) -> list[str]:
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            self.host,
            "--port",
            "0",
            "--workers",
            str(config.pool_workers),
            "--max-batch",
            str(config.max_batch),
            "--max-delay-ms",
            str(config.max_delay * 1000.0),
            "--lru-size",
            str(config.lru_size),
        ]
        if config.max_pending is not None:
            cmd += ["--max-pending", str(config.max_pending)]
        if config.max_disk_entries is not None:
            cmd += ["--disk-size", str(config.max_disk_entries)]
        cache_dir = config.worker_cache_dir(name)
        if cache_dir is not None:
            cmd += ["--cache-dir", str(cache_dir)]
        if config.kernel is not None:
            cmd += ["--kernel", config.kernel]
        if config.solve_timeout is not None:
            cmd += ["--solve-timeout", str(config.solve_timeout)]
        return cmd

    async def spawn(self, name: str, config: WorkerConfig) -> WorkerHandle:
        old = self._workers.get(name)
        if old is not None and old.alive:
            raise ConfigurationError(
                f"worker {name!r} is still alive; kill or stop it first"
            )
        process = await asyncio.create_subprocess_exec(
            *self._command(name, config),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.STDOUT,
        )
        try:
            port = await asyncio.wait_for(
                self._read_port(process), timeout=self.start_timeout
            )
            client = await ServeClient.connect(self.host, port)
        except Exception:
            with contextlib.suppress(ProcessLookupError):
                process.kill()
            await process.wait()
            raise
        worker = _SubprocessWorker(name, process, client, port)
        self._workers[name] = worker
        return worker

    @staticmethod
    async def _read_port(process: asyncio.subprocess.Process) -> int:
        assert process.stdout is not None
        while True:
            line = await process.stdout.readline()
            if not line:
                raise ConfigurationError(
                    "worker process exited before announcing its port"
                )
            match = _SERVING_RE.search(line.decode("utf-8", "replace"))
            if match:
                return int(match.group(2))

    async def close(self) -> None:
        await asyncio.gather(
            *(w.stop() for w in self._workers.values()),
            return_exceptions=True,
        )
        self._workers.clear()
