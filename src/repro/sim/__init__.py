"""Discrete-event validation of placements.

The paper's model is steady-state: a valid placement serves ``req_j ≤ W``
requests per time unit at each server.  This package *runs* that system —
clients emit individual requests over simulated time, requests travel to
their closest replica, and rate-limited servers process them — so the
test-suite can confirm that the algebraic loads every solver reports are
exactly what a running system would observe (and that infeasible
placements visibly queue).
"""

from repro.sim.engine import (
    ArrivalModel,
    ClosestPolicySimulation,
    SimulationReport,
    simulate_placement,
)

__all__ = [
    "ArrivalModel",
    "ClosestPolicySimulation",
    "SimulationReport",
    "simulate_placement",
]
