"""Event-driven simulation of the closest-policy service system.

Time is continuous; servers are rate-limited per unit-length window
(capacity ``W`` requests per window, matching the paper's "maximum number
W of requests" per time unit).  Requests that arrive at a saturated server
wait for the next window — for any *valid* placement under deterministic
arrivals no request ever waits, which is the semantic bridge between the
solvers' algebra and a running system (see ``tests/test_sim.py``).

Arrival models:

* ``uniform`` — client ``i`` emits exactly ``r_i`` requests per unit,
  evenly spaced (the paper's deterministic steady state);
* ``poisson`` — client ``i`` emits a Poisson process with rate ``r_i``
  (bursty traffic; transient queues appear even for valid placements).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from collections.abc import Iterable, Mapping
from typing import Literal

import numpy as np

from repro.core.solution import assign_clients
from repro.exceptions import ConfigurationError
from repro.tree.model import Tree

__all__ = [
    "ArrivalModel",
    "SimulationReport",
    "ClosestPolicySimulation",
    "simulate_placement",
]

ArrivalModel = Literal["uniform", "poisson"]


@dataclass(frozen=True)
class SimulationReport:
    """Outcome of one simulation run.

    Attributes
    ----------
    duration:
        Simulated time units.
    arrivals:
        Requests emitted per client index.
    processed:
        Requests processed per server node.
    unserved:
        Requests emitted by clients with no replica on their root path
        (never happens for valid placements).
    max_backlog:
        Largest number of requests simultaneously waiting at any server.
    final_backlog:
        Requests still queued when the clock stopped.
    """

    duration: float
    arrivals: tuple[int, ...]
    processed: Mapping[int, int]
    unserved: int
    max_backlog: int
    final_backlog: int

    @property
    def total_arrivals(self) -> int:
        return int(sum(self.arrivals))

    @property
    def total_processed(self) -> int:
        return int(sum(self.processed.values()))

    def utilization(self, capacity: int) -> dict[int, float]:
        """Mean processed requests per window over capacity, per server."""
        return {
            v: self.processed[v] / (capacity * self.duration)
            for v in self.processed
        }

    def conservation_ok(self) -> bool:
        """Every emitted request is processed, queued or unserved."""
        return (
            self.total_arrivals
            == self.total_processed + self.final_backlog + self.unserved
        )


class _Server:
    """Rate limiter: at most ``capacity`` requests per unit window.

    Within a window, queued backlog is served before fresh arrivals
    (FIFO); advancing the clock lets complete windows drain the backlog at
    full capacity.
    """

    __slots__ = ("capacity", "window", "used", "processed", "backlog", "max_backlog")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.window = 0
        self.used = 0
        self.processed = 0
        self.backlog = 0
        self.max_backlog = 0

    def _advance(self, window: int) -> None:
        """Move the clock to the start of ``window`` (drains backlog)."""
        if window <= self.window:
            return
        # Leftover room in the current window serves backlog first …
        take = min(self.capacity - self.used, self.backlog)
        self.processed += take
        self.backlog -= take
        # … then every complete window in between runs at full capacity.
        gap = window - self.window - 1
        take = min(gap * self.capacity, self.backlog)
        self.processed += take
        self.backlog -= take
        self.window = window
        self.used = 0

    def offer(self, time: float) -> None:
        """One request arrives at ``time``."""
        self._advance(int(math.floor(time)))
        # Backlog is served ahead of the new arrival within this window.
        take = min(self.capacity - self.used, self.backlog)
        self.processed += take
        self.backlog -= take
        self.used += take
        if self.backlog == 0 and self.used < self.capacity:
            self.used += 1
            self.processed += 1
        else:
            self.backlog += 1
            self.max_backlog = max(self.max_backlog, self.backlog)

    def finish(self, end_time: float) -> None:
        """Run out the clock; the final backlog is whatever remains."""
        self._advance(int(math.floor(end_time)))


class ClosestPolicySimulation:
    """Simulate a placement serving a tree's clients.

    Parameters
    ----------
    tree, replicas, capacity:
        The instance; ``replicas`` may be any iterable of nodes (validity
        is *not* required — overloaded placements are precisely the
        interesting case for the backlog metrics).
    arrivals:
        ``"uniform"`` (deterministic, the paper's model) or ``"poisson"``.
    rng:
        Only used by the Poisson model.
    """

    def __init__(
        self,
        tree: Tree,
        replicas: Iterable[int],
        capacity: int,
        *,
        arrivals: ArrivalModel = "uniform",
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if arrivals not in ("uniform", "poisson"):
            raise ConfigurationError(f"unknown arrival model {arrivals!r}")
        self._tree = tree
        self._replicas = frozenset(int(v) for v in replicas)
        self._capacity = capacity
        self._arrivals = arrivals
        self._rng = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )
        self._routing = assign_clients(tree, self._replicas)

    def run(self, duration: int) -> SimulationReport:
        """Simulate ``duration`` whole time units."""
        if duration < 1:
            raise ConfigurationError(f"duration must be >= 1, got {duration}")
        tree = self._tree
        servers = {v: _Server(self._capacity) for v in self._replicas}
        events: list[tuple[float, int, int]] = []  # (time, seq, client_idx)
        seq = 0
        arrivals = [0] * tree.n_clients
        unserved = 0
        for idx, client in enumerate(tree.clients):
            if self._arrivals == "uniform":
                # r_i evenly spaced arrivals per unit, phase-shifted per
                # client so a window never sees a synchronized burst.
                step = 1.0 / client.requests
                phase = (idx % 7) / 7.0 * step
                times = [
                    u + k * step + phase
                    for u in range(duration)
                    for k in range(client.requests)
                ]
            else:
                times = []
                t = float(self._rng.exponential(1.0 / client.requests))
                while t < duration:
                    times.append(t)
                    t += float(self._rng.exponential(1.0 / client.requests))
            arrivals[idx] = len(times)
            for t in times:
                heapq.heappush(events, (t, seq, idx))
                seq += 1

        while events:
            t, _, idx = heapq.heappop(events)
            server = self._routing[idx]
            if server is None:
                unserved += 1
                continue
            servers[server].offer(t)
        for srv in servers.values():
            srv.finish(float(duration))

        return SimulationReport(
            duration=float(duration),
            arrivals=tuple(arrivals),
            processed={v: s.processed for v, s in servers.items()},
            unserved=unserved,
            max_backlog=max((s.max_backlog for s in servers.values()), default=0),
            final_backlog=sum(s.backlog for s in servers.values()),
        )


def simulate_placement(
    tree: Tree,
    replicas: Iterable[int],
    capacity: int,
    duration: int = 20,
    *,
    arrivals: ArrivalModel = "uniform",
    rng: np.random.Generator | int | None = None,
) -> SimulationReport:
    """One-call wrapper around :class:`ClosestPolicySimulation`."""
    sim = ClosestPolicySimulation(
        tree, replicas, capacity, arrivals=arrivals, rng=rng
    )
    return sim.run(duration)
