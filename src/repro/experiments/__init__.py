"""Experiment harness reproducing §5 (Figures 4–11) plus worked examples.

Each runner takes a frozen config whose defaults are the paper's
parameters; the committed benchmarks call them at reduced replication
counts (scale is a parameter, never a code change).
"""

from repro.experiments.exp1_reuse import Exp1Config, Exp1Result, run_experiment1
from repro.experiments.exp2_dynamic import Exp2Config, Exp2Result, run_experiment2
from repro.experiments.exp3_power import Exp3Config, Exp3Result, run_experiment3
from repro.experiments.parallel import (
    run_experiment1_parallel,
    run_experiment2_parallel,
    run_experiment3_parallel,
    split_config,
)
from repro.experiments.presets import PRESETS, WorkloadPreset, make_preset, preset_names
from repro.experiments.scaling import ScalingPoint, run_scaling
from repro.experiments.store import (
    load_result,
    result_from_json,
    result_to_json,
    save_result,
)
from repro.experiments.worked_examples import (
    Figure1Example,
    Figure2Example,
    figure1_example,
    figure2_example,
)

__all__ = [
    "Exp1Config",
    "Exp1Result",
    "Exp2Config",
    "Exp2Result",
    "Exp3Config",
    "Exp3Result",
    "Figure1Example",
    "Figure2Example",
    "PRESETS",
    "ScalingPoint",
    "WorkloadPreset",
    "figure1_example",
    "figure2_example",
    "load_result",
    "make_preset",
    "preset_names",
    "result_from_json",
    "result_to_json",
    "save_result",
    "run_experiment1",
    "run_experiment1_parallel",
    "run_experiment2",
    "run_experiment2_parallel",
    "run_experiment3",
    "run_experiment3_parallel",
    "run_scaling",
    "split_config",
]
