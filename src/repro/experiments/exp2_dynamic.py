"""Experiment 2 — consecutive executions (Figures 5 and 7).

Protocol (§5.1): starting with no pre-existing servers, run 20 update
steps.  At each step the per-client request volumes are redrawn and each
algorithm re-places replicas using *its own* previous placement as the
pre-existing set.  Reported series:

* left panel — cumulative number of reused servers over steps (both
  algorithms);
* right panel — histogram of the per-step reuse gap
  ``reused(DP) − reused(GR)``, averaged over trees ("we count the average
  number of steps (over 20) at which each value is reached").

Paper scale: 200 fat trees (Figure 5) / high trees (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Callable

import numpy as np

from repro.analysis.stats import SeriesStats, summarize
from repro.core.costs import UniformCostModel
from repro.dynamics.evolution import RedrawRequests
from repro.dynamics.session import DPUpdateStrategy, GreedyStrategy, run_session
from repro.exceptions import ConfigurationError
from repro.tree.generators import paper_tree

__all__ = ["Exp2Config", "Exp2Result", "run_experiment2"]


@dataclass(frozen=True)
class Exp2Config:
    """Parameters of Experiment 2 (defaults: the paper's Figure 5)."""

    n_trees: int = 200
    n_nodes: int = 100
    children_range: tuple[int, int] = (6, 9)
    client_prob: float = 0.5
    request_range: tuple[int, int] = (1, 6)
    capacity: int = 10
    n_steps: int = 20
    create: float = 1e-4
    delete: float = 1e-5
    seed: int = 2012

    def __post_init__(self) -> None:
        if self.n_trees < 1:
            raise ConfigurationError(f"n_trees must be >= 1, got {self.n_trees}")
        if self.n_steps < 1:
            raise ConfigurationError(f"n_steps must be >= 1, got {self.n_steps}")

    def high_trees(self) -> Exp2Config:
        """The Figure 7 variant (2–4 children per node)."""
        return replace(self, children_range=(2, 4))


@dataclass(frozen=True)
class Exp2Result:
    """Aggregated dynamic-reuse series (Figure 5/7)."""

    config: Exp2Config
    steps: tuple[int, ...]
    dp_cumulative: tuple[SeriesStats, ...]  #: cumulative reuse per step
    gr_cumulative: tuple[SeriesStats, ...]
    gap_histogram: dict[int, float]  #: mean #steps per tree at each gap value
    count_mismatches: int  #: replica-count disagreements (must stay 0)

    def series(self) -> dict[str, list[tuple[float, float]]]:
        return {
            "DP": [(s, st.mean) for s, st in zip(self.steps, self.dp_cumulative, strict=True)],
            "GR": [(s, st.mean) for s, st in zip(self.steps, self.gr_cumulative, strict=True)],
        }

    def rows(self) -> list[tuple[int, float, float]]:
        return [
            (s, d.mean, g.mean)
            for s, d, g in zip(self.steps, self.dp_cumulative, self.gr_cumulative, strict=True)
        ]


def run_experiment2(
    config: Exp2Config | None = None,
    *,
    progress: Callable[[int, int], None] | None = None,
) -> Exp2Result:
    """Run Experiment 2 and aggregate cumulative-reuse curves + gap histogram."""
    if config is None:
        config = Exp2Config()
    rng = np.random.default_rng(config.seed)
    evolution = RedrawRequests(config.request_range)
    strategies = {
        "DP": DPUpdateStrategy(UniformCostModel(config.create, config.delete)),
        "GR": GreedyStrategy(),
    }

    dp_cum: list[list[int]] = [[] for _ in range(config.n_steps)]
    gr_cum: list[list[int]] = [[] for _ in range(config.n_steps)]
    gap_counts: dict[int, list[int]] = {}
    mismatches = 0

    for t in range(config.n_trees):
        tree = paper_tree(
            n_nodes=config.n_nodes,
            children_range=config.children_range,
            client_prob=config.client_prob,
            request_range=config.request_range,
            rng=rng,
        )
        session = run_session(
            tree,
            config.capacity,
            config.n_steps,
            evolution,
            strategies,
            rng=rng,
        )
        for rec_dp, rec_gr in zip(session.tracks["DP"], session.tracks["GR"], strict=True):
            if rec_dp.n_replicas != rec_gr.n_replicas:
                mismatches += 1
        for step, (c_dp, c_gr) in enumerate(
            zip(session.cumulative_reuse("DP"), session.cumulative_reuse("GR"), strict=True)
        ):
            dp_cum[step].append(c_dp)
            gr_cum[step].append(c_gr)
        per_tree: dict[int, int] = {}
        for gap in session.reuse_gaps("DP", "GR"):
            per_tree[gap] = per_tree.get(gap, 0) + 1
        for gap, count in per_tree.items():
            gap_counts.setdefault(gap, []).append(count)
        if progress is not None:
            progress(t + 1, config.n_trees)

    # Trees that never hit a gap value contribute a zero count to its mean.
    histogram = {
        gap: float(sum(counts)) / config.n_trees
        for gap, counts in sorted(gap_counts.items())
    }
    return Exp2Result(
        config=config,
        steps=tuple(range(config.n_steps)),
        dp_cumulative=tuple(summarize(s) for s in dp_cum),
        gr_cumulative=tuple(summarize(s) for s in gr_cum),
        gap_histogram=histogram,
        count_mismatches=mismatches,
    )
