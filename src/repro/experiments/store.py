"""Persist experiment results to JSON.

Research campaigns want the *analysis* re-runnable without re-solving; the
store serialises the Exp1/2/3 result objects (configs included) with a
versioned schema and restores them bit-for-bit, so figures can be re-drawn
or re-aggregated offline.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from repro.analysis.stats import SeriesStats
from repro.exceptions import ConfigurationError
from repro.experiments.exp1_reuse import Exp1Config, Exp1Result
from repro.experiments.exp2_dynamic import Exp2Config, Exp2Result
from repro.experiments.exp3_power import Exp3Config, Exp3Result

__all__ = ["result_to_json", "result_from_json", "save_result", "load_result"]

_SCHEMA = 1
_KINDS = {
    "exp1": (Exp1Config, Exp1Result),
    "exp2": (Exp2Config, Exp2Result),
    "exp3": (Exp3Config, Exp3Result),
}


def _stats_to_list(stats: SeriesStats) -> list[float]:
    return [stats.n, stats.mean, stats.std, stats.stderr, stats.minimum, stats.maximum]


def _stats_from_list(vals: list[float]) -> SeriesStats:
    return SeriesStats(
        n=int(vals[0]),
        mean=vals[1],
        std=vals[2],
        stderr=vals[3],
        minimum=vals[4],
        maximum=vals[5],
    )


def _encode(value: Any) -> Any:
    if isinstance(value, SeriesStats):
        return {"__stats__": _stats_to_list(value)}
    if isinstance(value, tuple):
        return [_encode(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _encode(v) for k, v in value.items()}
    return value


def result_to_json(result: Exp1Result | Exp2Result | Exp3Result) -> str:
    """Serialise an experiment result (config included) to JSON text."""
    kind = next(
        (k for k, (_, cls) in _KINDS.items() if isinstance(result, cls)),
        None,
    )
    if kind is None:
        raise ConfigurationError(
            f"unsupported result type {type(result).__name__}"
        )
    payload: dict[str, Any] = {"schema": _SCHEMA, "kind": kind}
    payload["config"] = dataclasses.asdict(result.config)
    fields: dict[str, Any] = {}
    for f in dataclasses.fields(result):
        if f.name == "config":
            continue
        fields[f.name] = _encode(getattr(result, f.name))
    payload["fields"] = fields
    return json.dumps(payload)


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if "__stats__" in value:
            return _stats_from_list(value["__stats__"])
        return {k: _decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return tuple(_decode(v) for v in value)
    return value


def result_from_json(text: str) -> Exp1Result | Exp2Result | Exp3Result:
    """Inverse of :func:`result_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid JSON: {exc}") from exc
    if payload.get("schema") != _SCHEMA:
        raise ConfigurationError(
            f"unsupported result schema {payload.get('schema')}"
        )
    kind = payload.get("kind")
    if kind not in _KINDS:
        raise ConfigurationError(f"unknown result kind {kind!r}")
    config_cls, result_cls = _KINDS[kind]
    raw_config = payload["config"]
    # dataclasses.asdict turned tuples into lists; the configs expect tuples.
    config_kwargs = {
        k: tuple(v) if isinstance(v, list) else v for k, v in raw_config.items()
    }
    config = config_cls(**config_kwargs)
    fields = {k: _decode(v) for k, v in payload["fields"].items()}
    if kind == "exp2":
        # JSON stringifies integer histogram keys and step indices.
        fields["gap_histogram"] = {
            int(k): v for k, v in fields["gap_histogram"].items()
        }
        fields["steps"] = tuple(int(s) for s in fields["steps"])
    return result_cls(config=config, **fields)


def save_result(
    result: Exp1Result | Exp2Result | Exp3Result, path: str
) -> None:
    """Write a result to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(result_to_json(result) + "\n")


def load_result(path: str) -> Exp1Result | Exp2Result | Exp3Result:
    """Read a result written by :func:`save_result`."""
    with open(path, encoding="utf-8") as fh:
        return result_from_json(fh.read())
