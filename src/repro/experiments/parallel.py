"""Parallel experiment execution over process pools.

The paper's campaigns are embarrassingly parallel across trees: each tree
is generated, solved and scored independently.  These helpers split an
experiment config into per-worker chunks with *derived seeds*, run the
chunks in a :class:`concurrent.futures.ProcessPoolExecutor`, and merge the
aggregated results exactly (pooled means/stddevs via
:func:`repro.analysis.stats.merge_series`).

Determinism caveat: a parallel run is reproducible for a fixed
``(seed, n_workers)`` pair, but differs from the sequential run with the
same seed because trees are drawn from per-chunk RNG streams.  Statistical
conclusions are unaffected (the chunks are independent experiments);
EXPERIMENTS.md always states which mode produced its numbers.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from collections.abc import Callable, Sequence
from typing import TypeVar

from repro.analysis.stats import merge_series
from repro.exceptions import ConfigurationError
from repro.experiments.exp1_reuse import Exp1Config, Exp1Result, run_experiment1
from repro.experiments.exp2_dynamic import Exp2Config, Exp2Result, run_experiment2
from repro.experiments.exp3_power import Exp3Config, Exp3Result, run_experiment3

__all__ = [
    "run_experiment1_parallel",
    "run_experiment2_parallel",
    "run_experiment3_parallel",
    "split_config",
]

_SEED_STRIDE = 7919  # distinct prime stride keeps chunk streams disjoint

ConfigT = TypeVar("ConfigT", Exp1Config, Exp2Config, Exp3Config)


def _default_workers(n_workers: int | None) -> int:
    if n_workers is not None:
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        return n_workers
    return max(1, min(8, os.cpu_count() or 1))


def split_config(config: ConfigT, n_chunks: int) -> list[ConfigT]:
    """Split ``config.n_trees`` across ``n_chunks`` derived-seed configs."""
    if n_chunks < 1:
        raise ConfigurationError(f"n_chunks must be >= 1, got {n_chunks}")
    n_chunks = min(n_chunks, config.n_trees)
    base = config.n_trees // n_chunks
    remainder = config.n_trees % n_chunks
    chunks = []
    for i in range(n_chunks):
        trees = base + (1 if i < remainder else 0)
        if trees == 0:
            continue
        chunks.append(
            replace(config, n_trees=trees, seed=config.seed + _SEED_STRIDE * i)
        )
    return chunks


def _run_chunks(runner: Callable, chunks: Sequence, n_workers: int) -> list:
    if n_workers == 1 or len(chunks) == 1:
        return [runner(c) for c in chunks]
    with ProcessPoolExecutor(max_workers=min(n_workers, len(chunks))) as pool:
        return list(pool.map(runner, chunks))


def run_experiment1_parallel(
    config: Exp1Config | None = None, *, n_workers: int | None = None
) -> Exp1Result:
    """Experiment 1 across a process pool; see module docstring."""
    if config is None:
        config = Exp1Config()
    workers = _default_workers(n_workers)
    parts = _run_chunks(run_experiment1, split_config(config, workers), workers)
    all_gap_means = [
        (p.mean_gap, p.config.n_trees * len(p.e_values)) for p in parts
    ]
    weight = sum(w for _, w in all_gap_means)
    return Exp1Result(
        config=config,
        e_values=config.e_values,
        dp_reuse=tuple(
            merge_series([p.dp_reuse[i] for p in parts])
            for i in range(len(config.e_values))
        ),
        gr_reuse=tuple(
            merge_series([p.gr_reuse[i] for p in parts])
            for i in range(len(config.e_values))
        ),
        gap=tuple(
            merge_series([p.gap[i] for p in parts])
            for i in range(len(config.e_values))
        ),
        mean_gap=sum(m * w for m, w in all_gap_means) / weight if weight else 0.0,
        max_gap=max(p.max_gap for p in parts),
        count_mismatches=sum(p.count_mismatches for p in parts),
    )


def run_experiment2_parallel(
    config: Exp2Config | None = None, *, n_workers: int | None = None
) -> Exp2Result:
    """Experiment 2 across a process pool; see module docstring."""
    if config is None:
        config = Exp2Config()
    workers = _default_workers(n_workers)
    parts = _run_chunks(run_experiment2, split_config(config, workers), workers)
    total_trees = sum(p.config.n_trees for p in parts)
    gaps: dict[int, float] = {}
    for p in parts:
        for gap, mean_count in p.gap_histogram.items():
            gaps[gap] = gaps.get(gap, 0.0) + mean_count * p.config.n_trees
    return Exp2Result(
        config=config,
        steps=tuple(range(config.n_steps)),
        dp_cumulative=tuple(
            merge_series([p.dp_cumulative[i] for p in parts])
            for i in range(config.n_steps)
        ),
        gr_cumulative=tuple(
            merge_series([p.gr_cumulative[i] for p in parts])
            for i in range(config.n_steps)
        ),
        gap_histogram={
            gap: total / total_trees for gap, total in sorted(gaps.items())
        },
        count_mismatches=sum(p.count_mismatches for p in parts),
    )


def run_experiment3_parallel(
    config: Exp3Config | None = None, *, n_workers: int | None = None
) -> Exp3Result:
    """Experiment 3 across a process pool; see module docstring."""
    if config is None:
        config = Exp3Config()
    workers = _default_workers(n_workers)
    parts = _run_chunks(run_experiment3, split_config(config, workers), workers)
    total_trees = sum(p.config.n_trees for p in parts)
    n_bounds = len(config.cost_bounds)

    def pooled_rate(rates_of) -> tuple[float, ...]:
        return tuple(
            sum(rates_of(p)[i] * p.config.n_trees for p in parts) / total_trees
            for i in range(n_bounds)
        )

    return Exp3Result(
        config=config,
        bounds=config.cost_bounds,
        dp_inverse=tuple(
            merge_series([p.dp_inverse[i] for p in parts]) for i in range(n_bounds)
        ),
        gr_inverse=tuple(
            merge_series([p.gr_inverse[i] for p in parts]) for i in range(n_bounds)
        ),
        dp_success=pooled_rate(lambda p: p.dp_success),
        gr_success=pooled_rate(lambda p: p.gr_success),
        gr_over_dp=tuple(
            merge_series([p.gr_over_dp[i] for p in parts]) for i in range(n_bounds)
        ),
    )
