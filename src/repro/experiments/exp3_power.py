"""Experiment 3 — power minimisation under a cost bound (Figures 8–11).

Protocol (§5.2): random trees with two modes ``W₁ = 5 < W₂ = 10``, power
``P_i = W₁³/10 + W_i³`` (static part ``W₁³/10``, dynamic ``W_i³``, α = 3),
5 pre-existing servers, clients with 1–5 requests.  For each cost bound the
optimal bi-criteria DP is compared against GR (capacity sweep 5..10,
load-determined modes, best candidate under the bound).

    "In Figure 8, we plot the inverse of the power of a solution, given a
    bound on the cost (the higher the better).  If the algorithm fails to
    find a solution for a tree, the value is 0, and we average the inverse
    of the power over the 100 trees."

The paper's "power inverse" axis runs 0..1, so the inverse is normalised;
we normalise per tree by the *unconstrained optimal power* (the frontier's
right end): ``inv = P_opt / P`` — 1.0 means the bound no longer binds, and
failures contribute 0.  Raw mean powers are reported alongside.

Variants: Figure 9 drops pre-existing servers, Figure 10 uses high trees
with bounds 10..35, Figure 11 prices ``create = delete = 1``,
``changed = 0.1`` with bounds 30..90.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Callable

import numpy as np

from repro.analysis.stats import SeriesStats, summarize
from repro.core.costs import ModalCostModel
from repro.exceptions import ConfigurationError
from repro.power.dp_power_pareto import power_frontier
from repro.power.greedy_power import greedy_power_candidates
from repro.power.modes import ModeSet, PowerModel
from repro.tree.generators import paper_tree, random_preexisting_modes

__all__ = ["Exp3Config", "Exp3Result", "run_experiment3"]

_EPS = 1e-9


@dataclass(frozen=True)
class Exp3Config:
    """Parameters of Experiment 3 (defaults: the paper's Figure 8)."""

    n_trees: int = 100
    n_nodes: int = 50
    children_range: tuple[int, int] = (6, 9)
    client_prob: float = 0.5
    request_range: tuple[int, int] = (1, 5)
    mode_capacities: tuple[int, ...] = (5, 10)
    alpha: float = 3.0
    #: §5.2: the static part of ``P_i = W₁³/10 + W_i³``.
    static_power: float = 5.0**3 / 10.0
    n_preexisting: int = 5
    #: pre-existing servers start at full capacity (highest mode).
    preexisting_mode: int = 1
    create: float = 0.1
    delete: float = 0.01
    changed: float = 0.001
    cost_bounds: tuple[float, ...] = tuple(float(b) for b in range(15, 46))
    seed: int = 2013

    def __post_init__(self) -> None:
        if self.n_trees < 1:
            raise ConfigurationError(f"n_trees must be >= 1, got {self.n_trees}")
        if self.n_preexisting < 0 or self.n_preexisting > self.n_nodes:
            raise ConfigurationError(
                f"n_preexisting must be in [0, {self.n_nodes}]"
            )
        if not (0 <= self.preexisting_mode < len(self.mode_capacities)):
            raise ConfigurationError(
                f"preexisting_mode out of range for {self.mode_capacities}"
            )

    def power_model(self) -> PowerModel:
        return PowerModel(
            modes=ModeSet(self.mode_capacities),
            static_power=self.static_power,
            alpha=self.alpha,
        )

    def cost_model(self) -> ModalCostModel:
        return ModalCostModel.uniform(
            len(self.mode_capacities),
            create=self.create,
            delete=self.delete,
            changed=self.changed,
        )

    def no_preexisting(self) -> Exp3Config:
        """The Figure 9 variant (no pre-existing replicas)."""
        return replace(self, n_preexisting=0)

    def high_trees(self) -> Exp3Config:
        """The Figure 10 variant (high trees, shifted bound range)."""
        return replace(
            self,
            children_range=(2, 4),
            cost_bounds=tuple(float(b) for b in range(10, 36)),
        )

    def expensive_costs(self) -> Exp3Config:
        """The Figure 11 variant (create=delete=1, changed=0.1)."""
        return replace(
            self,
            create=1.0,
            delete=1.0,
            changed=0.1,
            # Start below the feasibility knee so the plot shows where each
            # algorithm first finds solutions (reuse lets DP enter earlier).
            cost_bounds=tuple(float(b) for b in range(20, 91, 2)),
        )


@dataclass(frozen=True)
class Exp3Result:
    """Aggregated power curves (Figure 8–11 series)."""

    config: Exp3Config
    bounds: tuple[float, ...]
    dp_inverse: tuple[SeriesStats, ...]  #: normalised inverse power, 0 on failure
    gr_inverse: tuple[SeriesStats, ...]
    dp_success: tuple[float, ...]  #: fraction of trees with a DP solution
    gr_success: tuple[float, ...]
    #: mean GR/DP power ratio over trees where both succeed (paper: "GR
    #: consumes in average more than 30% more power than DP" mid-range).
    gr_over_dp: tuple[SeriesStats, ...]

    def series(self) -> dict[str, list[tuple[float, float]]]:
        return {
            "DP": [(b, s.mean) for b, s in zip(self.bounds, self.dp_inverse, strict=True)],
            "GR": [(b, s.mean) for b, s in zip(self.bounds, self.gr_inverse, strict=True)],
        }

    def rows(self) -> list[tuple[float, float, float, float, float, float]]:
        """(bound, DP inv, GR inv, DP success, GR success, GR/DP ratio)."""
        return [
            (b, d.mean, g.mean, ds, gs, r.mean)
            for b, d, g, ds, gs, r in zip(
                self.bounds,
                self.dp_inverse,
                self.gr_inverse,
                self.dp_success,
                self.gr_success,
                self.gr_over_dp, strict=True,
            )
        ]

    def peak_gr_overhead(self) -> float:
        """Largest mean GR-over-DP power overhead across bounds (ratio)."""
        vals = [s.mean for s in self.gr_over_dp if s.n > 0]
        return max(vals) if vals else float("nan")


def run_experiment3(
    config: Exp3Config | None = None,
    *,
    progress: Callable[[int, int], None] | None = None,
) -> Exp3Result:
    """Run Experiment 3: one frontier + one GR sweep per tree, then sweep
    the cost bounds over both."""
    if config is None:
        config = Exp3Config()
    rng = np.random.default_rng(config.seed)
    power_model = config.power_model()
    cost_model = config.cost_model()
    n_bounds = len(config.cost_bounds)
    dp_inv: list[list[float]] = [[] for _ in range(n_bounds)]
    gr_inv: list[list[float]] = [[] for _ in range(n_bounds)]
    dp_ok: list[int] = [0] * n_bounds
    gr_ok: list[int] = [0] * n_bounds
    ratio: list[list[float]] = [[] for _ in range(n_bounds)]

    for t in range(config.n_trees):
        tree = paper_tree(
            n_nodes=config.n_nodes,
            children_range=config.children_range,
            client_prob=config.client_prob,
            request_range=config.request_range,
            rng=rng,
        )
        pre = random_preexisting_modes(
            tree,
            config.n_preexisting,
            len(config.mode_capacities),
            rng=rng,
            mode=config.preexisting_mode,
        )
        frontier = power_frontier(tree, power_model, cost_model, pre).pairs()
        candidates = greedy_power_candidates(tree, power_model, cost_model, pre)
        p_opt = frontier[-1][1]  # unconstrained optimum (frontier right end)

        for idx, bound in enumerate(config.cost_bounds):
            dp_power: float | None = None
            for cost, power in frontier:
                if cost <= bound + _EPS:
                    dp_power = power
                else:
                    break
            gr_best = candidates.best_under_cost(bound)
            gr_power = gr_best.power if gr_best is not None else None

            dp_inv[idx].append(p_opt / dp_power if dp_power else 0.0)
            gr_inv[idx].append(p_opt / gr_power if gr_power else 0.0)
            if dp_power is not None:
                dp_ok[idx] += 1
            if gr_power is not None:
                gr_ok[idx] += 1
            if dp_power is not None and gr_power is not None:
                ratio[idx].append(gr_power / dp_power)
        if progress is not None:
            progress(t + 1, config.n_trees)

    n = float(config.n_trees)
    return Exp3Result(
        config=config,
        bounds=config.cost_bounds,
        dp_inverse=tuple(summarize(s) for s in dp_inv),
        gr_inverse=tuple(summarize(s) for s in gr_inv),
        dp_success=tuple(k / n for k in dp_ok),
        gr_success=tuple(k / n for k in gr_ok),
        gr_over_dp=tuple(summarize(s) for s in ratio),
    )
