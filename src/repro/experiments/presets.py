"""Named workload presets.

One registry for every tree family used in the paper and in the extension
benches, so the CLI, notebooks and tests can say ``make_preset("fig8")``
instead of repeating generator parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.tree.generators import attach_zipf_clients, paper_tree
from repro.tree.model import Tree

__all__ = ["WorkloadPreset", "PRESETS", "make_preset", "preset_names"]


@dataclass(frozen=True)
class WorkloadPreset:
    """A named tree-generator configuration."""

    name: str
    description: str
    build: Callable[[np.random.Generator], Tree]


def _fig4(rng: np.random.Generator) -> Tree:
    return paper_tree(100, children_range=(6, 9), client_prob=0.5,
                      request_range=(1, 6), rng=rng)


def _fig6(rng: np.random.Generator) -> Tree:
    return paper_tree(100, children_range=(2, 4), client_prob=0.5,
                      request_range=(1, 6), rng=rng)


def _fig8(rng: np.random.Generator) -> Tree:
    return paper_tree(50, children_range=(6, 9), client_prob=0.5,
                      request_range=(1, 5), rng=rng)


def _fig10(rng: np.random.Generator) -> Tree:
    return paper_tree(50, children_range=(2, 4), client_prob=0.5,
                      request_range=(1, 5), rng=rng)


def _zipf(rng: np.random.Generator) -> Tree:
    skeleton = paper_tree(100, children_range=(6, 9), client_prob=0.0, rng=rng)
    return attach_zipf_clients(
        list(skeleton.parents), client_prob=0.5, max_requests=6,
        exponent=1.5, rng=rng,
    )


def _scale500(rng: np.random.Generator) -> Tree:
    return paper_tree(500, children_range=(6, 9), client_prob=0.5,
                      request_range=(1, 6), rng=rng)


PRESETS: dict[str, WorkloadPreset] = {
    p.name: p
    for p in (
        WorkloadPreset("fig4", "Experiment 1 fat trees (N=100, 6-9 children, r∈[1,6])", _fig4),
        WorkloadPreset("fig6", "Experiment 1 high trees (N=100, 2-4 children)", _fig6),
        WorkloadPreset("fig8", "Experiment 3 fat trees (N=50, r∈[1,5])", _fig8),
        WorkloadPreset("fig10", "Experiment 3 high trees (N=50, 2-4 children)", _fig10),
        WorkloadPreset("zipf", "fat tree with Zipf(1.5) heavy-tailed volumes", _zipf),
        WorkloadPreset("scale500", "the paper's 500-node scalability instance", _scale500),
    )
}


def preset_names() -> list[str]:
    return sorted(PRESETS)


def make_preset(
    name: str, rng: np.random.Generator | int | None = None
) -> Tree:
    """Instantiate a preset workload."""
    if name not in PRESETS:
        raise ConfigurationError(
            f"unknown preset {name!r}; available: {', '.join(preset_names())}"
        )
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    return PRESETS[name].build(gen)
