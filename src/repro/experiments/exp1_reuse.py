"""Experiment 1 — impact of pre-existing servers (Figures 4 and 6).

Protocol (§5.1): draw random trees, seed them with ``E`` pre-existing
servers for a sweep of ``E`` values, solve with both GR [19] and the
MinCost-WithPre DP, and compare how many pre-existing servers each solution
reuses.  Both algorithms return the *minimal replica count* (the DP's cost
model makes the server count strictly dominant), so reuse fully determines
the cost gap.

Paper scale: 200 fat trees (``N = 100``, 6–9 children, ``W = 10``), clients
with probability 0.5 and 1–6 requests, ``E ∈ {0..100}``.  Figure 6 repeats
the run on *high* trees (2–4 children).  Scale is configurable; the
committed benchmarks run a reduced tree count and EXPERIMENTS.md records
the measured curves.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Callable

import numpy as np

from repro.analysis.stats import SeriesStats, summarize
from repro.core.costs import UniformCostModel
from repro.core.dp_withpre import replica_update
from repro.core.greedy import greedy_placement
from repro.exceptions import ConfigurationError
from repro.tree.generators import paper_tree, random_preexisting

__all__ = ["Exp1Config", "Exp1Result", "run_experiment1"]


@dataclass(frozen=True)
class Exp1Config:
    """Parameters of Experiment 1 (defaults: the paper's Figure 4)."""

    n_trees: int = 200
    n_nodes: int = 100
    children_range: tuple[int, int] = (6, 9)
    client_prob: float = 0.5
    request_range: tuple[int, int] = (1, 6)
    capacity: int = 10
    e_values: tuple[int, ...] = tuple(range(0, 101, 5))
    #: Equation-2 prices; small enough that minimising the server count
    #: strictly dominates for any N <= 1/(create + delete) (see §2.1).
    create: float = 1e-4
    delete: float = 1e-5
    seed: int = 2011

    def __post_init__(self) -> None:
        if self.n_trees < 1:
            raise ConfigurationError(f"n_trees must be >= 1, got {self.n_trees}")
        if any(e < 0 or e > self.n_nodes for e in self.e_values):
            raise ConfigurationError(
                f"e_values must lie in [0, {self.n_nodes}], got {self.e_values}"
            )

    def high_trees(self) -> Exp1Config:
        """The Figure 6 variant (2–4 children per node)."""
        return replace(self, children_range=(2, 4))


@dataclass(frozen=True)
class Exp1Result:
    """Aggregated reuse curves (the Figure 4/6 series)."""

    config: Exp1Config
    e_values: tuple[int, ...]
    dp_reuse: tuple[SeriesStats, ...]
    gr_reuse: tuple[SeriesStats, ...]
    gap: tuple[SeriesStats, ...]  #: per-E stats of (DP reuse − GR reuse)
    mean_gap: float  #: paper headline: "DP achieves an average reuse of 4.13 more servers"
    max_gap: int  #: paper headline: "it can reuse up to 15 more servers"
    count_mismatches: int  #: replica-count disagreements (must stay 0)

    def series(self) -> dict[str, list[tuple[float, float]]]:
        """Plot-ready mean curves keyed like the paper's legend."""
        return {
            "DP": [(e, s.mean) for e, s in zip(self.e_values, self.dp_reuse, strict=True)],
            "GR": [(e, s.mean) for e, s in zip(self.e_values, self.gr_reuse, strict=True)],
        }

    def rows(self) -> list[tuple[int, float, float, float]]:
        """(E, DP mean reuse, GR mean reuse, mean gap) table rows."""
        return [
            (e, d.mean, g.mean, gap.mean)
            for e, d, g, gap in zip(
                self.e_values, self.dp_reuse, self.gr_reuse, self.gap, strict=True
            )
        ]


def run_experiment1(
    config: Exp1Config | None = None,
    *,
    progress: Callable[[int, int], None] | None = None,
) -> Exp1Result:
    """Run Experiment 1 and aggregate the reuse curves.

    ``progress(done, total)`` is invoked after each tree when provided
    (the CLI uses it; benches keep it None).
    """
    if config is None:
        config = Exp1Config()
    rng = np.random.default_rng(config.seed)
    cost_model = UniformCostModel(config.create, config.delete)
    dp_samples: list[list[int]] = [[] for _ in config.e_values]
    gr_samples: list[list[int]] = [[] for _ in config.e_values]
    gap_samples: list[list[int]] = [[] for _ in config.e_values]
    mismatches = 0

    for t in range(config.n_trees):
        tree = paper_tree(
            n_nodes=config.n_nodes,
            children_range=config.children_range,
            client_prob=config.client_prob,
            request_range=config.request_range,
            rng=rng,
        )
        for idx, e in enumerate(config.e_values):
            pre = random_preexisting(tree, e, rng=rng)
            gr = greedy_placement(tree, config.capacity, preexisting=pre)
            dp = replica_update(tree, config.capacity, pre, cost_model)
            if gr.n_replicas != dp.n_replicas:
                mismatches += 1
            dp_samples[idx].append(dp.n_reused)
            gr_samples[idx].append(gr.n_reused)
            gap_samples[idx].append(dp.n_reused - gr.n_reused)
        if progress is not None:
            progress(t + 1, config.n_trees)

    all_gaps = [g for bucket in gap_samples for g in bucket]
    return Exp1Result(
        config=config,
        e_values=config.e_values,
        dp_reuse=tuple(summarize(s) for s in dp_samples),
        gr_reuse=tuple(summarize(s) for s in gr_samples),
        gap=tuple(summarize(s) for s in gap_samples),
        mean_gap=float(np.mean(all_gaps)) if all_gaps else 0.0,
        max_gap=int(max(all_gaps)) if all_gaps else 0,
        count_mismatches=mismatches,
    )
