"""The paper's running examples (Figures 1 and 2), reconstructed.

Both examples show why greedy/local reasoning fails, which motivates the
dynamic programs.  The trees are reverse-engineered from the §3.1 and §4.1
prose; the tests pin every claim the text makes, and
``examples/worked_examples.py`` walks through them interactively.

Figure 1 (update trade-off, ``W = 10``, pre-existing server on ``B``)::

    r (client: 2 or 4)
    └── A
        ├── B (client: 4)   <- pre-existing replica
        └── C (client: 7)

* keep ``B``                → 7 requests traverse ``A``;
* new server on ``C``       → 4 requests traverse ``A``;
* keep ``B`` and add ``C``  → nothing traverses ``A``.

With 2 root requests the optimum keeps ``B`` (root serves 7+2=9); with 4 it
deletes ``B`` and uses ``{C, r}`` (root serves 4+4=8) — the local choice at
``A`` depends on the rest of the tree.

Figure 2 (power trade-off, modes ``{7, 10}``, ``P = 10 + W²``)::

    r (client: 4 or 10)
    └── A
        ├── B (client: 3)
        └── C (client: 7)

With 4 root requests the optimum lets 3 requests through ``A``
(``{C, r}``, both at mode ``W₁``: 59 + 59 = 118); with 10 root requests
nothing may traverse ``A`` and ``{A, r}`` at mode ``W₂`` wins (220).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.costs import ModalCostModel
from repro.power.modes import ModeSet, PowerModel
from repro.tree.builders import TreeBuilder
from repro.tree.model import Tree

__all__ = [
    "Figure1Example",
    "Figure2Example",
    "figure1_example",
    "figure2_example",
]


@dataclass(frozen=True)
class Figure1Example:
    """Figure 1 instance parameterised by the root's client volume."""

    tree: Tree
    capacity: int
    preexisting: frozenset[int]
    root: int
    node_a: int
    node_b: int
    node_c: int


def figure1_example(root_requests: int) -> Figure1Example:
    """Build the Figure 1 tree with ``root_requests`` at the root client."""
    b = TreeBuilder()
    r = b.add_root()
    a = b.add_node(r)
    node_b = b.add_node(a)
    node_c = b.add_node(a)
    b.add_client(r, root_requests)
    b.add_client(node_b, 4)
    b.add_client(node_c, 7)
    return Figure1Example(
        tree=b.build(),
        capacity=10,
        preexisting=frozenset({node_b}),
        root=r,
        node_a=a,
        node_b=node_b,
        node_c=node_c,
    )


@dataclass(frozen=True)
class Figure2Example:
    """Figure 2 instance parameterised by the root's client volume."""

    tree: Tree
    power_model: PowerModel
    cost_model: ModalCostModel
    root: int
    node_a: int
    node_b: int
    node_c: int


def figure2_example(root_requests: int) -> Figure2Example:
    """Build the Figure 2 tree; power model ``P_i = 10 + W_i²``."""
    b = TreeBuilder()
    r = b.add_root()
    a = b.add_node(r)
    node_b = b.add_node(a)
    node_c = b.add_node(a)
    b.add_client(r, root_requests)
    b.add_client(node_b, 3)
    b.add_client(node_c, 7)
    power_model = PowerModel(ModeSet((7, 10)), static_power=10.0, alpha=2.0)
    # §4.1 discusses pure power minimisation; a free cost model keeps the
    # bi-criteria machinery out of the way.
    cost_model = ModalCostModel.uniform(2, create=0.0, delete=0.0, changed=0.0)
    return Figure2Example(
        tree=b.build(),
        power_model=power_model,
        cost_model=cost_model,
        root=r,
        node_a=a,
        node_b=node_b,
        node_c=node_c,
    )
