"""Scalability measurements (§5.2 closing prose).

The paper reports wall-clock feasibility rather than a figure:

    "without power, we are able to process trees with 500 nodes and 125
    pre-existing servers in 30 minutes; with power and no pre-existing
    server, we can process trees with 300 nodes in one hour.  The algorithm
    with power and pre-existing servers is the most time-consuming: it
    takes around one hour to process a tree with 70 nodes and 10
    pre-existing servers."

:func:`run_scaling` times the three regimes over a size sweep so the
benchmark can check the *ordering* (cost-only ≪ power-no-pre < power-with-
pre) and record absolute numbers for EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.costs import ModalCostModel, UniformCostModel
from repro.core.dp_withpre import replica_update
from repro.power.dp_power_pareto import power_frontier
from repro.power.modes import ModeSet, PowerModel
from repro.tree.generators import paper_tree, random_preexisting, random_preexisting_modes

__all__ = ["ScalingPoint", "run_scaling"]


@dataclass(frozen=True)
class ScalingPoint:
    """One timed solve."""

    regime: str  #: "cost", "power-nopre" or "power-withpre"
    n_nodes: int
    n_preexisting: int
    seconds: float
    detail: str  #: solver output summary (replica count / frontier size)


def _mean_time(fn, repeats: int) -> tuple[float, str]:
    best = float("inf")
    detail = ""
    for _ in range(repeats):
        t0 = time.perf_counter()
        detail = fn()
        best = min(best, time.perf_counter() - t0)
    return best, detail


def run_scaling(
    cost_sizes: Sequence[tuple[int, int]] = ((100, 25), (200, 50), (500, 125)),
    power_nopre_sizes: Sequence[int] = (50, 100, 300),
    power_withpre_sizes: Sequence[tuple[int, int]] = ((50, 5), (70, 10), (100, 10)),
    *,
    seed: int = 2014,
    repeats: int = 1,
) -> list[ScalingPoint]:
    """Time the three solver regimes at the paper's reference sizes."""
    rng = np.random.default_rng(seed)
    points: list[ScalingPoint] = []
    cost_model = UniformCostModel(1e-4, 1e-5)
    power_model = PowerModel(ModeSet((5, 10)), static_power=12.5, alpha=3.0)
    modal_costs = ModalCostModel.uniform(2, create=0.1, delete=0.01, changed=0.001)

    for n, e in cost_sizes:
        tree = paper_tree(n_nodes=n, rng=rng)
        pre = random_preexisting(tree, e, rng=rng)
        secs, detail = _mean_time(
            lambda: f"R={replica_update(tree, 10, pre, cost_model).n_replicas}",
            repeats,
        )
        points.append(ScalingPoint("cost", n, e, secs, detail))

    for n in power_nopre_sizes:
        tree = paper_tree(n_nodes=n, request_range=(1, 5), rng=rng)
        secs, detail = _mean_time(
            lambda: f"frontier={len(power_frontier(tree, power_model, modal_costs))}",
            repeats,
        )
        points.append(ScalingPoint("power-nopre", n, 0, secs, detail))

    for n, e in power_withpre_sizes:
        tree = paper_tree(n_nodes=n, request_range=(1, 5), rng=rng)
        pre = random_preexisting_modes(tree, e, 2, rng=rng, mode=1)
        secs, detail = _mean_time(
            lambda: (
                f"frontier={len(power_frontier(tree, power_model, modal_costs, pre))}"
            ),
            repeats,
        )
        points.append(ScalingPoint("power-withpre", n, e, secs, detail))

    return points
