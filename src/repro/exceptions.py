"""Exception hierarchy for :mod:`repro`.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Algorithmic infeasibility (a workload that no replica
placement can serve) is reported through :class:`InfeasibleError`, which is
*not* a programming error: it carries enough context to explain which
constraint failed.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TreeStructureError",
    "WorkloadError",
    "ConfigurationError",
    "InfeasibleError",
    "SolverError",
    "ServerClosedError",
    "ServerOverloadedError",
    "SolveTimeoutError",
    "QuarantinedError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class TreeStructureError(ReproError):
    """The node/parent description does not encode a rooted tree.

    Raised for cycles, multiple roots, dangling parent references,
    non-contiguous node identifiers, and similar structural defects.
    """


class WorkloadError(ReproError):
    """A client workload is malformed (non-positive requests, bad node)."""


class ConfigurationError(ReproError):
    """Invalid solver/experiment configuration (bad modes, costs, bounds)."""


class InfeasibleError(ReproError):
    """No valid replica placement exists for the given instance.

    Under the *closest* policy a placement is valid only if every client's
    requests can be absorbed by its closest replica-equipped ancestor within
    the capacity ``W`` (the largest mode, with power).  The canonical
    infeasible instance is an internal node whose directly attached clients
    already exceed ``W``: any server responsible for them would be
    overloaded.
    """

    def __init__(self, message: str, *, node: int | None = None) -> None:
        super().__init__(message)
        #: Node at which infeasibility was detected, when known.
        self.node = node


class SolverError(ReproError):
    """Internal solver invariant violated; indicates a bug, please report."""


class ServerClosedError(ReproError):
    """A request reached the serving frontend after shutdown began.

    In-flight work is drained before the server exits; only *new*
    submissions observe this error (see :meth:`repro.serve.BatchServer
    .stop`).
    """


class ServerOverloadedError(ReproError):
    """The serving frontend shed a request at its admission bound.

    Raised (and sent on the wire with ``code: "overloaded"``) when a
    :class:`~repro.serve.BatchServer` configured with ``max_pending``
    already holds that many admitted-but-incomplete canonical solves.
    Nothing was enqueued: the request can safely be retried elsewhere —
    the cluster router (:mod:`repro.serve.cluster`) retries it against
    the digest's fallback owner.
    """


class SolveTimeoutError(ReproError):
    """A supervised solve exceeded its wall-clock deadline.

    Raised (and sent on the wire with ``code: "timeout"``, retriable)
    when a canonical solve did not finish within ``solve_timeout``
    seconds.  The supervising executor has already killed and rebuilt
    the worker pool, so other in-flight solves are unaffected; the
    offending digest is quarantined for a TTL (see
    :class:`~repro.batch.quarantine.QuarantineRegistry`) so an
    immediate resubmission fails fast instead of hanging a second pool.
    Retrying is safe once the quarantine TTL expires — the timeout may
    have been load-induced rather than intrinsic to the instance.
    """

    def __init__(self, message: str, *, digests: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        #: Digests whose solves were in flight when the deadline fired.
        self.digests = digests


class QuarantinedError(ReproError):
    """A digest is quarantined after breaking or hanging a solve pool.

    Raised (and sent on the wire with ``code: "quarantined"``,
    *non*-retriable) when a canonical solve is attributed — by journal
    marks plus a sandboxed single-instance probe — as the culprit of a
    pool crash or deadline overrun.  The digest fails fast for the
    registry TTL instead of re-breaking the pool on every resubmission.
    """

    def __init__(
        self, message: str, *, digest: str | None = None, reason: str | None = None
    ) -> None:
        super().__init__(message)
        #: Quarantined canonical digest, when known.
        self.digest = digest
        #: Short machine-readable cause (``"crash"``, ``"timeout"``, ...).
        self.reason = reason
