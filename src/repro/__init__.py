"""repro — Power-aware replica placement and update strategies in tree networks.

A complete, from-scratch reproduction of Benoit, Renaud-Goud & Robert
(RR-LIP-2010-29 / IPDPS 2011 workshops): optimal replica *update* strategies
with pre-existing servers (MinCost-WithPre, Theorem 1), the NP-completeness
construction for MinPower (Theorem 2) and the bounded-cost power-minimisation
dynamic programs (Theorem 3), together with the greedy baseline of Wu, Lin &
Liu used in the paper's experiments and the full simulation harness behind
Figures 4–11.

Quickstart
----------
>>> import numpy as np
>>> from repro import paper_tree, greedy_placement, replica_update
>>> tree = paper_tree(n_nodes=30, rng=np.random.default_rng(0))
>>> gr = greedy_placement(tree, capacity=10)
>>> dp = replica_update(tree, capacity=10, preexisting=set(gr.replicas))
>>> dp.n_replicas == gr.n_replicas
True

See ``README.md`` for the architecture overview and ``DESIGN.md`` for the
paper-to-module map.
"""

from repro._version import __version__
from repro.batch import BatchInstance, ResultCache, solve_batch
from repro.exceptions import (
    ConfigurationError,
    InfeasibleError,
    ReproError,
    SolverError,
    TreeStructureError,
    WorkloadError,
)
from repro.core import (
    ModalCostModel,
    PlacementResult,
    UniformCostModel,
    dp_nopre_placement,
    greedy_placement,
    replica_update,
)
from repro.tree import (
    Client,
    Tree,
    TreeBuilder,
    paper_tree,
    random_preexisting,
    random_preexisting_modes,
)

__all__ = [
    "__version__",
    "BatchInstance",
    "Client",
    "ConfigurationError",
    "InfeasibleError",
    "ModalCostModel",
    "PlacementResult",
    "ReproError",
    "ResultCache",
    "SolverError",
    "Tree",
    "TreeBuilder",
    "TreeStructureError",
    "UniformCostModel",
    "WorkloadError",
    "dp_nopre_placement",
    "greedy_placement",
    "paper_tree",
    "random_preexisting",
    "random_preexisting_modes",
    "replica_update",
    "solve_batch",
]
