"""The *Upwards* access policy: one ancestor replica per client, any depth.

Relaxing *closest* to "any single ancestor" makes even feasibility of a
given replica set a bin-packing problem (clients are items, ancestor
replicas are bins) — Benoit–Rehn-Sonigo–Robert (2008) prove the policy
NP-hard for identical servers.  Accordingly this module provides:

* :func:`upwards_feasible` — exact feasibility by backtracking over
  clients (heaviest first, with capacity pruning); exponential worst case,
  intended for the small instances of tests and the policy ablation;
* :func:`upwards_first_fit` — a first-fit-decreasing heuristic assignment;
* :func:`upwards_min_replicas_exhaustive` — exact minimal replica count by
  enumerating placements (oracle-sized trees only).
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Iterable

from repro.core.solution import PlacementResult
from repro.exceptions import ConfigurationError, InfeasibleError
from repro.tree.model import Tree

__all__ = [
    "upwards_feasible",
    "upwards_first_fit",
    "upwards_min_replicas_exhaustive",
]

_MAX_NODES = 18
_MAX_CLIENTS = 16


def _ancestor_replicas(tree: Tree, node: int, rset: frozenset[int]) -> list[int]:
    return [v for v in tree.ancestors(node, include_self=True) if v in rset]


def upwards_feasible(
    tree: Tree, replicas: Iterable[int], capacity: int
) -> tuple[bool, dict[int, int] | None]:
    """Exact feasibility of ``replicas`` under the Upwards policy.

    Returns ``(feasible, loads)``; ``loads`` is a witness when feasible.
    Exponential in the number of clients (guarded at 16) — the policy's
    NP-hardness lives exactly here.
    """
    if capacity < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
    if tree.n_clients > _MAX_CLIENTS:
        raise ConfigurationError(
            f"upwards_feasible is exact and capped at {_MAX_CLIENTS} clients "
            f"(got {tree.n_clients})"
        )
    rset = frozenset(int(v) for v in replicas)
    options: list[tuple[int, list[int]]] = []
    for c in tree.clients:
        anc = _ancestor_replicas(tree, c.node, rset)
        if not anc:
            return False, None
        options.append((c.requests, anc))
    # Heaviest clients first: fail fast on the hardest items.
    order = sorted(range(len(options)), key=lambda i: -options[i][0])
    remaining = {v: capacity for v in rset}
    assignment: dict[int, int] = {}

    def backtrack(idx: int) -> bool:
        if idx == len(order):
            return True
        req, anc = options[order[idx]]
        tried: set[int] = set()
        for v in anc:
            room = remaining[v]
            if room < req or room in tried:
                continue
            tried.add(room)  # symmetric capacities are interchangeable
            remaining[v] -= req
            assignment[order[idx]] = v
            if backtrack(idx + 1):
                return True
            remaining[v] += req
        return False

    if not backtrack(0):
        return False, None
    loads = {v: 0 for v in rset}
    for i, server in assignment.items():
        loads[server] += options[i][0]
    return True, {v: q for v, q in loads.items()}


def upwards_first_fit(
    tree: Tree, replicas: Iterable[int], capacity: int
) -> tuple[bool, dict[int, int] | None]:
    """First-fit-decreasing heuristic assignment (deepest ancestor first).

    Sound but incomplete: a ``True`` answer is a certificate, a ``False``
    answer may be a false negative — the gap the ablation measures.
    """
    if capacity < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
    rset = frozenset(int(v) for v in replicas)
    remaining = {v: capacity for v in rset}
    loads = {v: 0 for v in rset}
    for c in sorted(tree.clients, key=lambda c: -c.requests):
        for v in _ancestor_replicas(tree, c.node, rset):  # deepest first
            if remaining[v] >= c.requests:
                remaining[v] -= c.requests
                loads[v] += c.requests
                break
        else:
            return False, None
    return True, loads


def upwards_min_replicas_exhaustive(tree: Tree, capacity: int) -> PlacementResult:
    """Exact minimal replica count under the Upwards policy (oracle).

    Enumerates placements by increasing size; each is checked with the
    exact backtracking feasibility test.  Guarded to tiny instances.
    """
    if tree.n_nodes > _MAX_NODES:
        raise ConfigurationError(
            f"exhaustive Upwards solver capped at {_MAX_NODES} nodes "
            f"(got {tree.n_nodes})"
        )
    nodes = range(tree.n_nodes)
    for size in range(tree.n_nodes + 1):
        for combo in combinations(nodes, size):
            ok, loads = upwards_feasible(tree, combo, capacity)
            if ok:
                assert loads is not None
                return PlacementResult(
                    replicas=frozenset(combo),
                    loads=loads,
                    extra={"policy": "upwards"},
                )
    raise InfeasibleError(
        "no replica placement serves this workload under the Upwards policy"
    )
