"""Access policies beyond *closest* (extension).

The paper fixes the **closest** policy (§2.1) and cites Benoit,
Rehn-Sonigo & Robert, *"Replica placement and access policies in tree
networks"* (IEEE TPDS 2008) — reference [2] — where two siblings are
studied:

* **Upwards** — a client is served by exactly one ancestor replica, not
  necessarily the closest (NP-hard even with identical servers);
* **Multiple** — a client's requests may be *split* across several
  ancestor replicas (polynomial).

This package implements both as an extension so the closest-policy results
of the paper can be positioned against the policy hierarchy

    min_replicas(Multiple) <= min_replicas(Upwards) <= min_replicas(Closest),

which the property tests verify on randomized instances and
`benchmarks/bench_ablation_policies.py` quantifies on paper workloads.
"""

from repro.policies.multiple import (
    multiple_feasible,
    multiple_min_replicas,
    multiple_placement,
)
from repro.policies.upwards import (
    upwards_feasible,
    upwards_first_fit,
    upwards_min_replicas_exhaustive,
)

__all__ = [
    "multiple_feasible",
    "multiple_min_replicas",
    "multiple_placement",
    "upwards_feasible",
    "upwards_first_fit",
    "upwards_min_replicas_exhaustive",
]
