"""The *Multiple* access policy: requests may split across ancestor replicas.

With splitting allowed, serving is a pure flow problem on the tree:
requests travel upwards and any replica on the way may absorb up to ``W``
of them.  Benoit–Rehn-Sonigo–Robert (2008) show the policy is polynomial;
we solve it exactly with a small dynamic program:

* **feasibility** of a *given* replica set is decided greedily — absorb as
  much as possible as deep as possible (requests only move up, so
  deferring absorption can never help);
* the **minimum replica count** comes from per-node tables
  ``t_j[k] =`` minimal flow leaving ``subtree_j`` (including ``j``) when it
  hosts ``k`` replicas: children merge by a min-plus convolution (flows
  add), and a replica on ``j`` turns ``t[k]`` into ``max(t[k] - W, 0)`` at
  ``k+1``.  Minimal residual per count is the right dominance because any
  completion is monotone in the residual.  (A naive "open a replica when
  the flow reaches W" greedy is *not* optimal: with W=10 and two child
  flows of 6, saturating the root absorbs 10 but strands 2, while
  ``{child, root}`` serves everything — the DP finds the latter.)
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.solution import PlacementResult
from repro.exceptions import ConfigurationError, InfeasibleError, SolverError
from repro.tree.model import Tree

__all__ = ["multiple_feasible", "multiple_min_replicas", "multiple_placement"]


def multiple_feasible(
    tree: Tree, replicas: Iterable[int], capacity: int
) -> tuple[bool, dict[int, int]]:
    """Can ``replicas`` serve the workload under the Multiple policy?

    Returns ``(feasible, loads)`` where ``loads`` is a witness assignment
    (requests absorbed per replica) when feasible.
    """
    if capacity < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
    rset = set(replicas)
    flow = tree.client_loads.astype(np.int64).copy()
    loads: dict[int, int] = {}
    for v in tree.post_order():
        j = int(v)
        for c in tree.children(j):
            flow[j] += flow[c]
        if j in rset:
            absorbed = int(min(flow[j], capacity))
            loads[j] = absorbed
            flow[j] -= absorbed
    return int(flow[tree.root]) == 0, loads


def multiple_placement(tree: Tree, capacity: int) -> PlacementResult:
    """Minimum-replica placement under the Multiple policy (exact DP).

    Raises :class:`InfeasibleError` when even one replica on every node
    cannot absorb the workload (some path is over-subscribed).
    """
    if capacity < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
    n = tree.n_nodes
    # tables[j][k] = min flow out of subtree_j (including j) with k replicas.
    tables: list[np.ndarray | None] = [None] * n
    # merge_choice[j] = per-child argmin split arrays; place_from[j][k] is
    # True when the final table value at k used a replica on j itself.
    merge_choice: list[list[np.ndarray]] = [[] for _ in range(n)]
    place_from: list[np.ndarray | None] = [None] * n

    for v in tree.post_order():
        j = int(v)
        acc = np.array([tree.client_load(j)], dtype=np.int64)
        for child in tree.children(j):
            child_t = tables[child]
            assert child_t is not None
            tables[child] = None
            na, nc = acc.shape[0], child_t.shape[0]
            out = np.full(na + nc - 1, np.iinfo(np.int64).max, dtype=np.int64)
            choice = np.zeros(na + nc - 1, dtype=np.int64)
            for d in range(nc):
                cand = acc + child_t[d]
                region = out[d : d + na]
                better = cand < region
                if better.any():
                    region[better] = cand[better]
                    choice[d : d + na][better] = d
            merge_choice[j].append(choice)
            acc = out
        # Replica-on-j option: one extra replica absorbs up to W.
        final = np.full(acc.shape[0] + 1, np.iinfo(np.int64).max, dtype=np.int64)
        placed = np.zeros(acc.shape[0] + 1, dtype=bool)
        final[: acc.shape[0]] = acc
        with_rep = np.maximum(acc - capacity, 0)
        better = with_rep < final[1:]
        final[1:][better] = with_rep[better]
        placed[1:][better] = True
        tables[j] = final
        place_from[j] = placed

    root = tree.root
    root_t = tables[root]
    assert root_t is not None
    feas = np.flatnonzero(root_t == 0)
    if feas.size == 0:
        raise InfeasibleError(
            "no replica placement can serve this workload under the "
            "Multiple policy (an over-subscribed path exists)"
        )
    best_k = int(feas[0])

    # Reconstruction: unwind the place-on-node flag, then the child splits.
    replicas: list[int] = []
    stack: list[tuple[int, int]] = [(root, best_k)]
    while stack:
        j, k = stack.pop()
        placed_j = place_from[j]
        assert placed_j is not None
        if placed_j[k]:
            replicas.append(j)
            k -= 1
        children = tree.children(j)
        for idx in range(len(children) - 1, -1, -1):
            d = int(merge_choice[j][idx][k])
            stack.append((children[idx], d))
            k -= d
        if k != 0:
            raise SolverError(f"Multiple-policy backtracking left budget {k}")
    if len(replicas) != best_k:
        raise SolverError(
            f"reconstructed {len(replicas)} replicas, expected {best_k}"
        )
    feasible, loads = multiple_feasible(tree, replicas, capacity)
    if not feasible:
        raise SolverError("reconstructed Multiple placement is not feasible")
    return PlacementResult(
        replicas=frozenset(replicas),
        loads=loads,
        extra={"policy": "multiple"},
    )


def multiple_min_replicas(tree: Tree, capacity: int) -> int:
    """Minimal replica count under the Multiple policy."""
    return multiple_placement(tree, capacity).n_replicas
