"""Distribution-tree substrate.

The paper's platform model (§2.1) is a fixed tree whose internal nodes may
host replicas and whose leaves are clients issuing requests.  This package
provides:

* :class:`~repro.tree.model.Tree` / :class:`~repro.tree.model.Client` — the
  immutable tree data structure used by every solver;
* :class:`~repro.tree.builders.TreeBuilder` — incremental construction;
* :mod:`~repro.tree.generators` — random workloads, including the exact
  parameterisations of the paper's experiments (fat and high trees);
* :mod:`~repro.tree.traversal` — orders and ancestor utilities;
* :mod:`~repro.tree.serialize` — JSON round-trips and DOT export;
* :mod:`~repro.tree.nxinterop` — conversion to/from networkx;
* :mod:`~repro.tree.metrics` — structural statistics;
* :mod:`~repro.tree.validate` — structural validation helpers.
"""

from repro.tree.builders import TreeBuilder
from repro.tree.generators import (
    attach_random_clients,
    attach_zipf_clients,
    balanced_tree,
    caterpillar_tree,
    paper_tree,
    path_tree,
    random_preexisting,
    random_preexisting_modes,
    random_recursive_tree,
    star_tree,
)
from repro.tree.model import Client, Tree
from repro.tree.serialize import tree_from_dict, tree_from_json, tree_to_dict, tree_to_dot, tree_to_json
from repro.tree.transform import relabel, scale_workload, split_client

__all__ = [
    "Client",
    "Tree",
    "TreeBuilder",
    "attach_random_clients",
    "attach_zipf_clients",
    "balanced_tree",
    "caterpillar_tree",
    "paper_tree",
    "path_tree",
    "random_preexisting",
    "random_preexisting_modes",
    "random_recursive_tree",
    "relabel",
    "scale_workload",
    "split_client",
    "star_tree",
    "tree_from_dict",
    "tree_from_json",
    "tree_to_dict",
    "tree_to_dot",
    "tree_to_json",
]
