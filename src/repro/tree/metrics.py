"""Structural statistics over distribution trees.

Used by the experiment reports to characterise generated workloads (the
paper distinguishes *fat* trees — 6–9 children — from *high* trees — 2–4
children; these metrics let tests assert the generators actually produce the
intended shapes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tree.model import Tree

__all__ = ["TreeStats", "tree_stats"]


@dataclass(frozen=True)
class TreeStats:
    """Summary statistics of a distribution tree."""

    n_nodes: int
    n_clients: int
    total_requests: int
    height: int
    mean_depth: float
    max_branching: int
    mean_branching: float
    internal_leaves: int
    max_direct_load: int

    def as_dict(self) -> dict[str, float | int]:
        return {
            "n_nodes": self.n_nodes,
            "n_clients": self.n_clients,
            "total_requests": self.total_requests,
            "height": self.height,
            "mean_depth": self.mean_depth,
            "max_branching": self.max_branching,
            "mean_branching": self.mean_branching,
            "internal_leaves": self.internal_leaves,
            "max_direct_load": self.max_direct_load,
        }


def tree_stats(tree: Tree) -> TreeStats:
    """Compute :class:`TreeStats` in a single pass."""
    n = tree.n_nodes
    branchings = np.array([len(tree.children(v)) for v in range(n)], dtype=np.int64)
    depths = np.array([tree.depth(v) for v in range(n)], dtype=np.int64)
    nonleaf = branchings[branchings > 0]
    return TreeStats(
        n_nodes=n,
        n_clients=tree.n_clients,
        total_requests=tree.total_requests,
        height=tree.height,
        mean_depth=float(depths.mean()) if n else 0.0,
        max_branching=int(branchings.max()) if n else 0,
        mean_branching=float(nonleaf.mean()) if nonleaf.size else 0.0,
        internal_leaves=int((branchings == 0).sum()),
        max_direct_load=int(tree.client_loads.max()) if n else 0,
    )
