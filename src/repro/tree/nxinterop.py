"""networkx interoperability.

networkx is used strictly as an *exchange and cross-checking* layer — the
solvers run on :class:`~repro.tree.model.Tree` directly.  The conversion
keeps clients as attributed leaf nodes so a round-trip preserves the full
instance.
"""

from __future__ import annotations

import networkx as nx

from repro.exceptions import TreeStructureError
from repro.tree.model import Client, Tree

__all__ = ["to_networkx", "from_networkx"]

_KIND = "kind"
_REQUESTS = "requests"


def to_networkx(tree: Tree) -> nx.DiGraph:
    """Convert to a ``networkx.DiGraph`` (edges point parent -> child).

    Internal nodes are labelled ``("node", v)`` with ``kind="internal"``;
    clients are ``("client", i)`` with ``kind="client"`` and a ``requests``
    attribute.
    """
    g = nx.DiGraph()
    for v in range(tree.n_nodes):
        g.add_node(("node", v), **{_KIND: "internal"})
    for v in range(tree.n_nodes):
        p = tree.parent(v)
        if p is not None:
            g.add_edge(("node", p), ("node", v))
    for i, c in enumerate(tree.clients):
        g.add_node(("client", i), **{_KIND: "client", _REQUESTS: c.requests})
        g.add_edge(("node", c.node), ("client", i))
    return g


def from_networkx(g: nx.DiGraph) -> Tree:
    """Rebuild a :class:`Tree` from a graph produced by :func:`to_networkx`.

    The internal-node subgraph must be an arborescence (a directed rooted
    tree); anything else raises :class:`TreeStructureError`.
    """
    internal = [n for n, d in g.nodes(data=True) if d.get(_KIND) == "internal"]
    if not internal:
        raise TreeStructureError("graph contains no internal nodes")
    ids = sorted(idx for _, idx in internal)
    if ids != list(range(len(ids))):
        raise TreeStructureError(
            "internal node ids must be contiguous 0..n-1 to rebuild a Tree"
        )
    sub = g.subgraph(internal)
    if not nx.is_arborescence(sub):
        raise TreeStructureError("internal-node subgraph is not a rooted tree")
    parents: list[int | None] = [None] * len(ids)
    for (_, pid), (_, cid) in sub.edges():
        parents[cid] = pid
    clients = []
    for n, d in g.nodes(data=True):
        if d.get(_KIND) == "client":
            preds = list(g.predecessors(n))
            if len(preds) != 1 or preds[0][0] != "node":
                raise TreeStructureError(f"client {n} must hang off one internal node")
            clients.append(Client(preds[0][1], int(d[_REQUESTS])))
    return Tree(parents, clients)
