"""Core distribution-tree data structure.

The model follows §2.1 of the paper: a rooted tree whose *internal* nodes
(`0..n-1`) may host replicas, and whose leaves are *clients*.  A client is
attached to exactly one internal node and issues a fixed number of requests
per time unit.  Several clients may hang off the same internal node; the
solvers only ever need the aggregated per-node client load, but clients are
kept as first-class objects so that workload evolution (§5.1, Experiment 2)
can redraw individual request counts.

:class:`Tree` instances are immutable after construction and precompute the
queries that dominate the dynamic programs: children lists, a post-order,
depths, per-node client loads and per-subtree aggregates.  All hot arrays are
numpy ``int64`` so the solvers can slice them without copies (see the
hpc-parallel guides: views, not copies).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.exceptions import TreeStructureError, WorkloadError

__all__ = ["Client", "Tree"]


@dataclass(frozen=True)
class Client:
    """A leaf client attached to an internal node.

    Attributes
    ----------
    node:
        Identifier of the internal node this client hangs off.
    requests:
        Number of requests issued per time unit (``r_i`` in the paper);
        strictly positive.
    """

    node: int
    requests: int

    def __post_init__(self) -> None:
        if self.requests <= 0:
            raise WorkloadError(
                f"client at node {self.node} has non-positive requests "
                f"({self.requests}); the paper's r_i are >= 1"
            )

    def with_requests(self, requests: int) -> Client:
        """Return a copy of this client issuing ``requests`` requests."""
        return Client(self.node, requests)


class Tree:
    """Immutable rooted tree of internal nodes with attached clients.

    Parameters
    ----------
    parents:
        ``parents[v]`` is the parent of internal node ``v``; exactly one
        entry must be ``None`` (the root).  Node identifiers are the indices
        ``0..n-1``.
    clients:
        Iterable of :class:`Client` (or ``(node, requests)`` pairs).
    validate:
        When true (default) the structure is checked to be a single rooted
        tree; disable only for trusted generated input.

    Notes
    -----
    The tree is *fixed* for the whole lifetime of a placement problem, which
    is the paper's key platform assumption; mutating workloads produce new
    ``Tree`` instances via :meth:`with_clients`.
    """

    # ``__weakref__`` lets caches key entries by tree identity without
    # keeping the tree alive (repro.batch.canonical.cached_subtree_codes).
    __slots__ = (
        "__weakref__",
        "_parents",
        "_children",
        "_root",
        "_clients",
        "_clients_at",
        "_client_load",
        "_post_order",
        "_post_index",
        "_depth",
        "_subtree_internal",
        "_subtree_requests",
    )

    def __init__(
        self,
        parents: Sequence[int | None] | Mapping[int, int | None],
        clients: Iterable[Client | tuple[int, int]] = (),
        *,
        validate: bool = True,
    ) -> None:
        parent_list = _normalize_parents(parents)
        n = len(parent_list)
        if n == 0:
            raise TreeStructureError("a tree needs at least one internal node")

        roots = [v for v, p in enumerate(parent_list) if p is None]
        if validate:
            if len(roots) != 1:
                raise TreeStructureError(
                    f"expected exactly one root (parent None), found {len(roots)}"
                )
            for v, p in enumerate(parent_list):
                if p is not None and not (0 <= p < n):
                    raise TreeStructureError(
                        f"node {v} references out-of-range parent {p}"
                    )
                if p == v:
                    raise TreeStructureError(f"node {v} is its own parent")
        elif len(roots) != 1:  # cheap sanity check even when trusted
            raise TreeStructureError("parent vector does not define one root")
        root = roots[0]

        children: list[list[int]] = [[] for _ in range(n)]
        for v, p in enumerate(parent_list):
            if p is not None:
                children[p].append(v)

        client_objs: list[Client] = []
        clients_at: list[list[Client]] = [[] for _ in range(n)]
        load = np.zeros(n, dtype=np.int64)
        for c in clients:
            if not isinstance(c, Client):
                c = Client(int(c[0]), int(c[1]))
            if not (0 <= c.node < n):
                raise WorkloadError(
                    f"client references unknown internal node {c.node}"
                )
            client_objs.append(c)
            clients_at[c.node].append(c)
            load[c.node] += c.requests

        # Iterative post-order; also detects cycles/unreachable nodes when
        # validating (every node must be visited exactly once from the root).
        post: list[int] = []
        depth = np.zeros(n, dtype=np.int64)
        stack: list[tuple[int, int]] = [(root, 0)]
        seen = 0
        while stack:
            v, ci = stack[-1]
            if ci == 0:
                seen += 1
            if ci < len(children[v]):
                stack[-1] = (v, ci + 1)
                child = children[v][ci]
                depth[child] = depth[v] + 1
                stack.append((child, 0))
            else:
                post.append(v)
                stack.pop()
        if seen != n:
            raise TreeStructureError(
                f"parent vector is not a single tree: reached {seen} of {n} "
                "nodes from the root (cycle or disconnected component)"
            )

        post_arr = np.asarray(post, dtype=np.int64)
        post_index = np.empty(n, dtype=np.int64)
        post_index[post_arr] = np.arange(n, dtype=np.int64)

        # Subtree aggregates, excluding the node itself for internal counts
        # (matching the (e, n) table convention of Algorithm 3) but including
        # it for request totals.
        sub_internal = np.zeros(n, dtype=np.int64)
        sub_requests = load.copy()
        for v in post:
            for c in children[v]:
                sub_internal[v] += sub_internal[c] + 1
                sub_requests[v] += sub_requests[c]

        self._parents = tuple(parent_list)
        self._children = tuple(tuple(cs) for cs in children)
        self._root = root
        self._clients = tuple(client_objs)
        self._clients_at = tuple(tuple(cs) for cs in clients_at)
        self._client_load = load
        self._post_order = post_arr
        self._post_index = post_index
        self._depth = depth
        self._subtree_internal = sub_internal
        self._subtree_requests = sub_requests

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of internal nodes (``N`` in the paper)."""
        return len(self._parents)

    @property
    def root(self) -> int:
        """Identifier of the root node ``r``."""
        return self._root

    @property
    def clients(self) -> tuple[Client, ...]:
        """All clients, in insertion order."""
        return self._clients

    @property
    def n_clients(self) -> int:
        return len(self._clients)

    @property
    def total_requests(self) -> int:
        """Sum of all client requests in the tree."""
        return int(self._subtree_requests[self._root])

    def parent(self, v: int) -> int | None:
        """Parent of ``v`` (``None`` for the root)."""
        return self._parents[v]

    def children(self, v: int) -> tuple[int, ...]:
        """Internal children of ``v`` in construction order."""
        return self._children[v]

    def clients_at(self, v: int) -> tuple[Client, ...]:
        """Clients directly attached to ``v``."""
        return self._clients_at[v]

    def client_load(self, v: int) -> int:
        """Aggregated requests of clients directly attached to ``v``."""
        return int(self._client_load[v])

    @property
    def client_loads(self) -> np.ndarray:
        """Read-only ``int64`` array of per-node direct client loads."""
        view = self._client_load.view()
        view.flags.writeable = False
        return view

    def depth(self, v: int) -> int:
        """Edge distance from the root (root has depth 0)."""
        return int(self._depth[v])

    @property
    def height(self) -> int:
        """Maximum node depth."""
        return int(self._depth.max())

    def subtree_internal_count(self, v: int) -> int:
        """Number of internal nodes strictly inside ``subtree_v``.

        Matches the paper's convention where the tables at ``v`` exclude
        ``v`` itself (placement on ``v`` is decided at its parent).
        """
        return int(self._subtree_internal[v])

    def subtree_requests(self, v: int) -> int:
        """Total client requests issued inside ``subtree_v`` (incl. ``v``)."""
        return int(self._subtree_requests[v])

    # ------------------------------------------------------------------
    # traversals
    # ------------------------------------------------------------------
    def post_order(self) -> np.ndarray:
        """Post-order of internal nodes (children before parents)."""
        view = self._post_order.view()
        view.flags.writeable = False
        return view

    def pre_order(self) -> Iterator[int]:
        """Pre-order traversal (parents before children)."""
        stack = [self._root]
        while stack:
            v = stack.pop()
            yield v
            stack.extend(reversed(self._children[v]))

    def ancestors(self, v: int, *, include_self: bool = False) -> Iterator[int]:
        """Yield ancestors of ``v`` walking up to the root."""
        if include_self:
            yield v
        p = self._parents[v]
        while p is not None:
            yield p
            p = self._parents[p]

    def subtree_nodes(self, v: int, *, include_root: bool = True) -> Iterator[int]:
        """Yield internal nodes of ``subtree_v`` in pre-order."""
        stack = [v]
        first = True
        while stack:
            u = stack.pop()
            if not first or include_root:
                yield u
            first = False
            stack.extend(reversed(self._children[u]))

    def is_ancestor(self, anc: int, v: int) -> bool:
        """True when ``anc`` lies on the path from ``v`` to the root.

        A node is considered an ancestor of itself.
        """
        while v is not None:  # type: ignore[comparison-overlap]
            if v == anc:
                return True
            v = self._parents[v]  # type: ignore[assignment]
        return False

    # ------------------------------------------------------------------
    # derived instances
    # ------------------------------------------------------------------
    def with_clients(self, clients: Iterable[Client | tuple[int, int]]) -> Tree:
        """Return a tree with identical structure but a new workload."""
        return Tree(self._parents, clients, validate=False)

    @property
    def parents(self) -> tuple[int | None, ...]:
        """Parent vector (root entry is ``None``)."""
        return self._parents

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tree):
            return NotImplemented
        return self._parents == other._parents and self._clients == other._clients

    def __hash__(self) -> int:
        return hash((self._parents, self._clients))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tree(n_nodes={self.n_nodes}, n_clients={self.n_clients}, "
            f"total_requests={self.total_requests}, height={self.height})"
        )


def _normalize_parents(
    parents: Sequence[int | None] | Mapping[int, int | None],
) -> list[int | None]:
    """Accept either a sequence or a dense ``{node: parent}`` mapping."""
    if isinstance(parents, Mapping):
        n = len(parents)
        missing = [v for v in range(n) if v not in parents]
        if missing:
            raise TreeStructureError(
                f"parent mapping must use contiguous ids 0..{n - 1}; "
                f"missing {missing[:5]}"
            )
        return [parents[v] for v in range(n)]
    out: list[int | None] = []
    for p in parents:
        out.append(None if p is None else int(p))
    return out
