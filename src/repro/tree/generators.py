"""Random tree and workload generators.

:func:`paper_tree` reproduces the generator described in §5 of the paper:

    "we randomly build a set of distribution trees with N = 100 internal
    nodes of maximum capacity W = 10.  Each internal node has between 6 and
    9 children, and clients are distributed randomly throughout the tree:
    each internal node has a client with a probability 0.5, and this client
    has between 1 and 6 requests."

The "high trees" variants (Figures 6, 7, 10) use 2–4 children per node; both
shapes are obtained by changing ``children_range``.  All generators take an
explicit :class:`numpy.random.Generator` so every experiment is reproducible
bit-for-bit.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.tree.model import Client, Tree

__all__ = [
    "paper_tree",
    "balanced_tree",
    "path_tree",
    "star_tree",
    "caterpillar_tree",
    "random_recursive_tree",
    "attach_random_clients",
    "attach_zipf_clients",
    "random_preexisting",
    "random_preexisting_modes",
]


def _as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def attach_random_clients(
    parents: Sequence[int | None],
    *,
    client_prob: float = 0.5,
    request_range: tuple[int, int] = (1, 6),
    rng: np.random.Generator | int | None = None,
) -> Tree:
    """Attach the paper's Bernoulli client workload to a parent vector.

    Each internal node independently receives one client with probability
    ``client_prob``; the client issues ``uniform[request_range]`` requests.
    """
    if not (0.0 <= client_prob <= 1.0):
        raise ConfigurationError(f"client_prob must be in [0, 1], got {client_prob}")
    lo, hi = request_range
    if lo < 1 or hi < lo:
        raise ConfigurationError(
            f"request_range must satisfy 1 <= lo <= hi, got {request_range}"
        )
    gen = _as_rng(rng)
    n = len(parents)
    has_client = gen.random(n) < client_prob
    requests = gen.integers(lo, hi + 1, size=n)
    clients = [
        Client(int(v), int(requests[v])) for v in range(n) if has_client[v]
    ]
    return Tree(parents, clients, validate=False)


def attach_zipf_clients(
    parents: Sequence[int | None],
    *,
    client_prob: float = 0.5,
    max_requests: int = 6,
    exponent: float = 1.5,
    rng: np.random.Generator | int | None = None,
) -> Tree:
    """Attach clients with Zipf-skewed request volumes.

    Real content workloads are heavy-tailed (a few hot objects dominate);
    this generator draws each present client's volume from a truncated
    Zipf(``exponent``) on ``1..max_requests``.  Useful for stressing the
    solvers beyond the paper's uniform workloads — the qualitative results
    of Figures 4/8 are insensitive to the switch (see the workload tests).
    """
    if not (0.0 <= client_prob <= 1.0):
        raise ConfigurationError(f"client_prob must be in [0, 1], got {client_prob}")
    if max_requests < 1:
        raise ConfigurationError(f"max_requests must be >= 1, got {max_requests}")
    if exponent <= 0:
        raise ConfigurationError(f"exponent must be > 0, got {exponent}")
    gen = _as_rng(rng)
    n = len(parents)
    has_client = gen.random(n) < client_prob
    # Truncated Zipf via inverse-CDF on the normalised mass of 1..max.
    weights = np.arange(1, max_requests + 1, dtype=np.float64) ** (-exponent)
    cdf = np.cumsum(weights / weights.sum())
    draws = np.searchsorted(cdf, gen.random(n)) + 1
    clients = [
        Client(int(v), int(draws[v])) for v in range(n) if has_client[v]
    ]
    return Tree(parents, clients, validate=False)


def _grow_parents(
    n_nodes: int,
    children_range: tuple[int, int],
    gen: np.random.Generator,
) -> list[int | None]:
    """BFS growth: pop a node, give it ``uniform[children_range]`` children
    until ``n_nodes`` internal nodes exist (the last node's brood may be cut
    short)."""
    lo, hi = children_range
    if lo < 1 or hi < lo:
        raise ConfigurationError(
            f"children_range must satisfy 1 <= lo <= hi, got {children_range}"
        )
    if n_nodes < 1:
        raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
    parents: list[int | None] = [None]
    queue = [0]
    head = 0
    while len(parents) < n_nodes:
        if head >= len(queue):  # pragma: no cover - unreachable with lo >= 1
            raise ConfigurationError("tree growth stalled; widen children_range")
        v = queue[head]
        head += 1
        k = int(gen.integers(lo, hi + 1))
        for _ in range(k):
            if len(parents) >= n_nodes:
                break
            child = len(parents)
            parents.append(v)
            queue.append(child)
    return parents


def paper_tree(
    n_nodes: int = 100,
    *,
    children_range: tuple[int, int] = (6, 9),
    client_prob: float = 0.5,
    request_range: tuple[int, int] = (1, 6),
    rng: np.random.Generator | int | None = None,
) -> Tree:
    """Random tree with the paper's §5 generator.

    Defaults reproduce Experiment 1's *fat* trees; pass
    ``children_range=(2, 4)`` for the *high* trees of Figures 6/7/10 and
    ``request_range=(1, 5)`` with ``n_nodes=50`` for Experiment 3.
    """
    gen = _as_rng(rng)
    parents = _grow_parents(n_nodes, children_range, gen)
    return attach_random_clients(
        parents, client_prob=client_prob, request_range=request_range, rng=gen
    )


def balanced_tree(
    branching: int,
    height: int,
    *,
    client_prob: float = 0.0,
    request_range: tuple[int, int] = (1, 6),
    rng: np.random.Generator | int | None = None,
) -> Tree:
    """Complete ``branching``-ary tree of the given height (height 0 = root)."""
    if branching < 1:
        raise ConfigurationError(f"branching must be >= 1, got {branching}")
    if height < 0:
        raise ConfigurationError(f"height must be >= 0, got {height}")
    parents: list[int | None] = [None]
    level = [0]
    for _ in range(height):
        nxt: list[int] = []
        for v in level:
            for _ in range(branching):
                child = len(parents)
                parents.append(v)
                nxt.append(child)
        level = nxt
    return attach_random_clients(
        parents, client_prob=client_prob, request_range=request_range, rng=rng
    )


def path_tree(
    n_nodes: int,
    *,
    client_prob: float = 0.0,
    request_range: tuple[int, int] = (1, 6),
    rng: np.random.Generator | int | None = None,
) -> Tree:
    """Chain of ``n_nodes`` internal nodes (worst-case depth)."""
    if n_nodes < 1:
        raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
    parents: list[int | None] = [None] + list(range(n_nodes - 1))
    return attach_random_clients(
        parents, client_prob=client_prob, request_range=request_range, rng=rng
    )


def star_tree(
    n_leaves: int,
    *,
    client_prob: float = 0.0,
    request_range: tuple[int, int] = (1, 6),
    rng: np.random.Generator | int | None = None,
) -> Tree:
    """Root with ``n_leaves`` internal children (worst-case branching)."""
    if n_leaves < 0:
        raise ConfigurationError(f"n_leaves must be >= 0, got {n_leaves}")
    parents: list[int | None] = [None] + [0] * n_leaves
    return attach_random_clients(
        parents, client_prob=client_prob, request_range=request_range, rng=rng
    )


def caterpillar_tree(
    spine: int,
    legs_per_node: int = 1,
    *,
    client_prob: float = 0.0,
    request_range: tuple[int, int] = (1, 6),
    rng: np.random.Generator | int | None = None,
) -> Tree:
    """Spine chain with ``legs_per_node`` pendant internal nodes per spine node."""
    if spine < 1:
        raise ConfigurationError(f"spine must be >= 1, got {spine}")
    if legs_per_node < 0:
        raise ConfigurationError(f"legs_per_node must be >= 0, got {legs_per_node}")
    parents: list[int | None] = [None]
    prev = 0
    for _ in range(spine - 1):
        node = len(parents)
        parents.append(prev)
        prev = node
    spine_nodes = list(range(spine))
    for v in spine_nodes:
        for _ in range(legs_per_node):
            parents.append(v)
    return attach_random_clients(
        parents, client_prob=client_prob, request_range=request_range, rng=rng
    )


def random_recursive_tree(
    n_nodes: int,
    *,
    client_prob: float = 0.0,
    request_range: tuple[int, int] = (1, 6),
    rng: np.random.Generator | int | None = None,
) -> Tree:
    """Uniform-attachment random tree (each node picks a uniform parent)."""
    if n_nodes < 1:
        raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
    gen = _as_rng(rng)
    parents: list[int | None] = [None]
    for v in range(1, n_nodes):
        parents.append(int(gen.integers(0, v)))
    return attach_random_clients(
        parents, client_prob=client_prob, request_range=request_range, rng=gen
    )


def random_preexisting(
    tree: Tree,
    count: int,
    *,
    rng: np.random.Generator | int | None = None,
) -> frozenset[int]:
    """Sample ``count`` distinct internal nodes as pre-existing servers ``E``."""
    if not (0 <= count <= tree.n_nodes):
        raise ConfigurationError(
            f"pre-existing count must be in [0, {tree.n_nodes}], got {count}"
        )
    gen = _as_rng(rng)
    chosen = gen.choice(tree.n_nodes, size=count, replace=False)
    return frozenset(int(v) for v in chosen)


def random_preexisting_modes(
    tree: Tree,
    count: int,
    n_modes: int,
    *,
    rng: np.random.Generator | int | None = None,
    mode: int | None = None,
) -> dict[int, int]:
    """Sample pre-existing servers with an initial mode each.

    Returns ``{node: mode_index}`` with mode indices in ``0..n_modes-1``.
    When ``mode`` is given every server starts in that mode (the experiments
    in §5.2 deploy pre-existing servers at full capacity by default);
    otherwise modes are drawn uniformly.
    """
    if n_modes < 1:
        raise ConfigurationError(f"n_modes must be >= 1, got {n_modes}")
    if mode is not None and not (0 <= mode < n_modes):
        raise ConfigurationError(f"mode must be in [0, {n_modes - 1}], got {mode}")
    gen = _as_rng(rng)
    nodes = random_preexisting(tree, count, rng=gen)
    if mode is not None:
        return {v: mode for v in sorted(nodes)}
    return {v: int(gen.integers(0, n_modes)) for v in sorted(nodes)}
