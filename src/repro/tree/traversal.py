"""Traversal helpers beyond the methods on :class:`~repro.tree.model.Tree`.

These free functions are used by the validators, the greedy baseline and the
dynamics package; they deliberately work on the public ``Tree`` API only.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.tree.model import Tree

__all__ = [
    "bfs_order",
    "leaves",
    "lowest_common_ancestor",
    "path_to_root",
    "nodes_by_depth",
]


def bfs_order(tree: Tree) -> list[int]:
    """Breadth-first order of internal nodes starting at the root."""
    order = [tree.root]
    head = 0
    while head < len(order):
        v = order[head]
        head += 1
        order.extend(tree.children(v))
    return order


def leaves(tree: Tree) -> list[int]:
    """Internal nodes without internal children (clients may be attached)."""
    return [v for v in range(tree.n_nodes) if not tree.children(v)]


def path_to_root(tree: Tree, v: int) -> list[int]:
    """Nodes on the unique path ``v -> root``, inclusive on both ends."""
    return [v, *tree.ancestors(v)]


def lowest_common_ancestor(tree: Tree, u: int, v: int) -> int:
    """Lowest common ancestor of two internal nodes (simple walk-up)."""
    du, dv = tree.depth(u), tree.depth(v)
    while du > dv:
        u = tree.parent(u)  # type: ignore[assignment]
        du -= 1
    while dv > du:
        v = tree.parent(v)  # type: ignore[assignment]
        dv -= 1
    while u != v:
        u = tree.parent(u)  # type: ignore[assignment]
        v = tree.parent(v)  # type: ignore[assignment]
    return u


def nodes_by_depth(tree: Tree) -> Iterator[tuple[int, list[int]]]:
    """Yield ``(depth, nodes)`` pairs from the root downwards."""
    buckets: dict[int, list[int]] = {}
    for v in range(tree.n_nodes):
        buckets.setdefault(tree.depth(v), []).append(v)
    for d in sorted(buckets):
        yield d, buckets[d]
