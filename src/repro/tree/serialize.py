"""Tree (de)serialization: dict/JSON round-trips and Graphviz DOT export.

The dict schema is versioned so saved workloads stay loadable:

.. code-block:: python

    {
        "schema": 1,
        "parents": [None, 0, 0, 1],
        "clients": [[1, 4], [3, 2]],          # (node, requests) pairs
    }
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping
from typing import Any

from repro.exceptions import ConfigurationError
from repro.tree.model import Client, Tree

__all__ = [
    "tree_to_dict",
    "tree_from_dict",
    "tree_to_json",
    "tree_from_json",
    "tree_to_dot",
]

_SCHEMA = 1


def tree_to_dict(tree: Tree) -> dict[str, Any]:
    """Serialize a tree (structure + workload) to a JSON-friendly dict."""
    return {
        "schema": _SCHEMA,
        "parents": list(tree.parents),
        "clients": [[c.node, c.requests] for c in tree.clients],
    }


def tree_from_dict(data: Mapping[str, Any]) -> Tree:
    """Inverse of :func:`tree_to_dict`."""
    schema = data.get("schema", _SCHEMA)
    if schema != _SCHEMA:
        raise ConfigurationError(f"unsupported tree schema version {schema}")
    try:
        parents = [None if p is None else int(p) for p in data["parents"]]
        clients = [Client(int(n), int(r)) for n, r in data["clients"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed tree dict: {exc}") from exc
    return Tree(parents, clients)


def tree_to_json(tree: Tree, *, indent: int | None = None) -> str:
    """Serialize a tree to a JSON string.

    Keys are sorted so equal trees serialise to equal bytes regardless
    of how the payload dict was assembled (the determinism contract the
    ``repro lint`` determinism rule enforces for this module).
    """
    return json.dumps(tree_to_dict(tree), indent=indent, sort_keys=True)


def tree_from_json(text: str) -> Tree:
    """Parse a tree from a JSON string produced by :func:`tree_to_json`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid JSON: {exc}") from exc
    return tree_from_dict(data)


def tree_to_dot(
    tree: Tree,
    *,
    replicas: Iterable[int] = (),
    preexisting: Iterable[int] = (),
    name: str = "distribution_tree",
) -> str:
    """Render the tree as Graphviz DOT.

    Internal nodes are boxes; clients are ellipses labelled with their
    request count.  Nodes in ``replicas`` are filled; nodes in
    ``preexisting`` get a double border — handy when eyeballing update
    strategies.
    """
    rep = set(replicas)
    pre = set(preexisting)
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    for v in range(tree.n_nodes):
        attrs = ["shape=box"]
        label = f"n{v}"
        if v in pre:
            attrs.append("peripheries=2")
            label += " (pre)"
        if v in rep:
            attrs.append('style=filled fillcolor="lightblue"')
        attrs.append(f'label="{label}"')
        lines.append(f"  n{v} [{' '.join(attrs)}];")
    for v in range(tree.n_nodes):
        p = tree.parent(v)
        if p is not None:
            lines.append(f"  n{p} -> n{v};")
    for idx, c in enumerate(tree.clients):
        lines.append(
            f'  c{idx} [shape=ellipse label="r={c.requests}"];'
        )
        lines.append(f"  n{c.node} -> c{idx} [style=dashed];")
    lines.append("}")
    return "\n".join(lines)
