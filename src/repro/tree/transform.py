"""Structure-preserving tree transformations.

These exist for *metamorphic testing*: each transformation provably
preserves (or maps predictably) the optimal replica count, so the
test-suite can hammer the solvers with derived instances whose answers are
known relative to the original:

* :func:`relabel` — node ids are arbitrary; optima are invariant.  Since
  child order (and hence DP merge order) is derived from ids, relabeling
  also exercises merge-order independence;
* :func:`scale_workload` — multiplying every request *and* the capacity by
  ``k`` preserves all feasibility comparisons, hence every optimum;
* :func:`split_client` — splitting one client into two with the same total
  at the same node is invisible to the closest policy (only aggregated
  per-node load matters).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.tree.model import Client, Tree

__all__ = ["relabel", "scale_workload", "split_client"]


def relabel(tree: Tree, permutation: Sequence[int]) -> tuple[Tree, list[int]]:
    """Apply a node-id permutation; returns ``(tree', mapping)``.

    ``permutation[v]`` is the new id of old node ``v``; the returned
    mapping equals the permutation (handy for translating replica sets).
    """
    perm = list(int(p) for p in permutation)
    if sorted(perm) != list(range(tree.n_nodes)):
        raise ConfigurationError(
            f"permutation must be a bijection on 0..{tree.n_nodes - 1}"
        )
    parents: list[int | None] = [None] * tree.n_nodes
    for v in range(tree.n_nodes):
        p = tree.parent(v)
        parents[perm[v]] = None if p is None else perm[p]
    clients = [Client(perm[c.node], c.requests) for c in tree.clients]
    return Tree(parents, clients), perm


def scale_workload(tree: Tree, factor: int) -> Tree:
    """Multiply every client's requests by a positive integer factor."""
    if factor < 1:
        raise ConfigurationError(f"factor must be >= 1, got {factor}")
    return tree.with_clients(
        Client(c.node, c.requests * factor) for c in tree.clients
    )


def split_client(
    tree: Tree, client_index: int, rng: np.random.Generator | int | None = None
) -> Tree:
    """Split one client into two at the same node with the same total.

    Clients with a single request are returned unchanged (nothing to
    split).  Under the closest policy only per-node aggregate load matters,
    so every solver's optimum is invariant.
    """
    if not (0 <= client_index < tree.n_clients):
        raise ConfigurationError(
            f"client_index must be in [0, {tree.n_clients - 1}], got {client_index}"
        )
    target = tree.clients[client_index]
    if target.requests < 2:
        return tree
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    left = int(gen.integers(1, target.requests))
    right = target.requests - left
    new_clients: list[Client] = []
    for i, c in enumerate(tree.clients):
        if i == client_index:
            new_clients.append(Client(c.node, left))
            new_clients.append(Client(c.node, right))
        else:
            new_clients.append(c)
    return tree.with_clients(new_clients)
