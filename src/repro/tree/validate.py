"""Structural and workload validation.

``Tree`` construction already rejects malformed parent vectors; the helpers
here perform the *semantic* checks that solvers rely on:

* :func:`check_capacity_feasible` — the closest policy admits a solution iff
  every internal node's *direct* client load fits in the largest capacity
  (any server responsible for those clients serves at least that load);
* :func:`check_preexisting` — pre-existing server sets must reference
  internal nodes of the tree.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.exceptions import ConfigurationError, InfeasibleError
from repro.tree.model import Tree

__all__ = [
    "check_capacity_feasible",
    "check_preexisting",
    "max_direct_load",
]


def max_direct_load(tree: Tree) -> int:
    """Largest aggregated direct client load over all internal nodes."""
    return int(tree.client_loads.max()) if tree.n_nodes else 0


def check_capacity_feasible(tree: Tree, capacity: int) -> None:
    """Raise :class:`InfeasibleError` when no placement can serve the tree.

    Under the closest policy a replica at (or above) node ``v`` serves all of
    ``v``'s unserved subtree, so a node whose direct clients already exceed
    the maximal capacity can never be served (Algorithm 2 exits with "no
    solution" in exactly this case).
    """
    if capacity < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
    loads = tree.client_loads
    for v in range(tree.n_nodes):
        if loads[v] > capacity:
            raise InfeasibleError(
                f"direct client load {int(loads[v])} at node {v} exceeds the "
                f"maximal capacity W={capacity}; no closest-policy placement "
                "can serve these clients",
                node=v,
            )


def check_preexisting(
    tree: Tree, preexisting: Iterable[int] | Mapping[int, int]
) -> frozenset[int]:
    """Validate a pre-existing server set and return it as a frozenset."""
    nodes = frozenset(int(v) for v in preexisting)
    for v in nodes:
        if not (0 <= v < tree.n_nodes):
            raise ConfigurationError(
                f"pre-existing server {v} is not an internal node of the tree"
            )
    return nodes
