"""Incremental tree construction.

:class:`TreeBuilder` lets tests, examples and generators grow a tree node by
node without worrying about parent-vector bookkeeping, then freeze it into an
immutable :class:`~repro.tree.model.Tree`.
"""

from __future__ import annotations

from repro.exceptions import TreeStructureError, WorkloadError
from repro.tree.model import Client, Tree

__all__ = ["TreeBuilder"]


class TreeBuilder:
    """Grow a distribution tree imperatively.

    Example
    -------
    >>> b = TreeBuilder()
    >>> root = b.add_root()
    >>> a = b.add_node(root)
    >>> _ = b.add_client(a, requests=4)
    >>> tree = b.build()
    >>> tree.n_nodes, tree.total_requests
    (2, 4)
    """

    def __init__(self) -> None:
        self._parents: list[int | None] = []
        self._clients: list[Client] = []

    @property
    def n_nodes(self) -> int:
        return len(self._parents)

    def add_root(self) -> int:
        """Create the root node; must be called first and only once."""
        if self._parents:
            raise TreeStructureError("root already exists; use add_node(parent)")
        self._parents.append(None)
        return 0

    def add_node(self, parent: int) -> int:
        """Create an internal node under ``parent`` and return its id."""
        if not self._parents:
            raise TreeStructureError("add_root() must be called before add_node()")
        if not (0 <= parent < len(self._parents)):
            raise TreeStructureError(f"unknown parent node {parent}")
        node = len(self._parents)
        self._parents.append(parent)
        return node

    def add_nodes(self, parent: int, count: int) -> list[int]:
        """Create ``count`` sibling nodes under ``parent``."""
        return [self.add_node(parent) for _ in range(count)]

    def add_client(self, node: int, requests: int) -> Client:
        """Attach a client issuing ``requests`` to internal node ``node``."""
        if not (0 <= node < len(self._parents)):
            raise WorkloadError(f"cannot attach client to unknown node {node}")
        client = Client(node, requests)
        self._clients.append(client)
        return client

    def build(self, *, validate: bool = True) -> Tree:
        """Freeze into an immutable :class:`Tree`."""
        return Tree(self._parents, self._clients, validate=validate)
