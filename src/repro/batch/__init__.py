"""Batch serving layer: canonical instance caching + high-throughput solves.

Replica-placement traffic is dominated by repeated and isomorphic
instances (the same tree families re-solved across request vectors), so
the batch layer dedupes by a relabelling-invariant canonical digest,
caches canonical solutions in an LRU + optional sharded disk store, and
fans results back out through each instance's inverse relabelling:

>>> import numpy as np
>>> from repro.batch import ResultCache, random_batch, solve_batch
>>> batch = random_batch(8, duplicate_rate=0.5, n_nodes=30, rng=np.random.default_rng(0))
>>> cache = ResultCache(max_entries=128)
>>> results = solve_batch(batch, solver="dp", cache=cache)
>>> len(results) == 8 and cache.stats.duplicates_folded > 0
True

Solver families are pluggable policies (:mod:`repro.batch.registry`):
the MinCost trio (``dp`` / ``greedy`` / ``dp_nopre``) and the power
family (``min_power`` / ``power_frontier`` / ``greedy_power``) ship
built in, and a new solver is a ~50-line registration — digest fields,
canonical solve, fan-out — not an executor fork.

See ``README.md`` ("Batch solving and caching") for cache semantics and
the CLI front-end (``repro batch``).
"""

from repro.batch.cache import ResultCache
from repro.batch.canonical import (
    Canonical,
    canonicalize,
    instance_digest,
    relabel_tree,
)
from repro.batch.executor import instance_key, solve_batch, solve_one
from repro.batch.instance import (
    BatchInstance,
    batch_from_json,
    batch_to_json,
    instance_from_dict,
    instance_to_dict,
    random_batch,
)
from repro.batch.registry import (
    SolverPolicy,
    available_solvers,
    get_policy,
    register_policy,
)

__all__ = [
    "BatchInstance",
    "Canonical",
    "ResultCache",
    "SolverPolicy",
    "available_solvers",
    "batch_from_json",
    "batch_to_json",
    "canonicalize",
    "get_policy",
    "instance_digest",
    "instance_from_dict",
    "instance_key",
    "instance_to_dict",
    "random_batch",
    "register_policy",
    "relabel_tree",
    "solve_batch",
    "solve_one",
]
