"""High-throughput batch solving: canonical dedupe + cache + process pool.

:func:`solve_batch` turns the per-instance solvers into a serving-shaped
engine.  For a batch of :class:`~repro.batch.instance.BatchInstance`:

1. every instance is canonicalised (:mod:`repro.batch.canonical`) and
   keyed by its content digest — relabelled isomorphic duplicates collapse
   onto one key;
2. unique keys are looked up in an optional
   :class:`~repro.batch.cache.ResultCache` (LRU + disk tier);
3. the remaining misses are solved — serially, or across a
   :class:`~concurrent.futures.ProcessPoolExecutor` in contiguous chunks
   (the chunk/merge discipline of :mod:`repro.experiments.parallel`);
4. canonical solutions are fanned back out through each instance's inverse
   relabelling and re-verified against the *original* tree, so a cache or
   mapping bug can never return an invalid placement silently.

Only the canonical replica set crosses process and disk boundaries — the
per-instance bookkeeping (loads, reuse partition, Equation-2 cost) is
recomputed in O(N) during fan-out, which keeps cache records tiny and
JSON-able.

Solver policies: ``"dp"`` (MinCost-WithPre, the paper's Theorem 1),
``"greedy"`` (GR baseline) and ``"dp_nopre"`` (pre-existing-oblivious
MinCost).  Results are cross-compatible only within one policy; the digest
covers the policy name.  The digest also covers *only* the parameters the
policy's solution set depends on: greedy (index tie-break) and dp_nopre
place replicas independently of the pre-existing set and the cost model —
those only enter the per-instance fan-out pricing — so requests differing
just in pre/cost share one cached solve under those policies.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Sequence

from repro.batch.cache import ResultCache
from repro.batch.canonical import Canonical, canonicalize, instance_digest
from repro.batch.instance import BatchInstance
from repro.core.dp_nopre import dp_nopre_placement
from repro.core.dp_withpre import replica_update
from repro.core.greedy import greedy_placement
from repro.core.costs import UniformCostModel
from repro.core.solution import PlacementResult
from repro.exceptions import ConfigurationError
from repro.perf.stats import BatchCacheStats
from repro.tree.model import Tree

__all__ = ["SOLVERS", "solve_batch"]

SOLVERS = ("dp", "greedy", "dp_nopre")

#: Policies whose replica set depends on the pre-existing servers and the
#: cost model.  greedy (index tie-break) and dp_nopre use both only for
#: result bookkeeping, which the fan-out recomputes per instance anyway.
_POLICY_USES_PRE_AND_COST = frozenset({"dp"})

_RECORD_SCHEMA = 1


def _instance_key(
    instance: BatchInstance, solver: str
) -> tuple[Canonical, str]:
    """Canonical form + digest covering only what ``solver`` consumes."""
    if solver in _POLICY_USES_PRE_AND_COST:
        canonical = canonicalize(instance.tree, instance.preexisting)
        digest = instance_digest(
            canonical, instance.capacity, instance.cost_model, solver
        )
    else:
        canonical = canonicalize(instance.tree)
        digest = instance_digest(canonical, instance.capacity, None, solver)
    return canonical, digest


def _canonical_payload(
    canonical: Canonical, instance: BatchInstance, solver: str
) -> dict[str, Any]:
    """Picklable/pure-data description of one canonical solve."""
    return {
        "parents": list(canonical.parents),
        "clients": [list(c) for c in canonical.clients],
        "pre": list(canonical.preexisting),
        "capacity": instance.capacity,
        "create": instance.cost_model.create,
        "delete": instance.cost_model.delete,
        "solver": solver,
    }


def _solve_canonical(payload: dict[str, Any]) -> dict[str, Any]:
    """Solve one canonical instance; returns a JSON-able cache record."""
    tree = Tree(
        [None if p is None else int(p) for p in payload["parents"]],
        [(int(n), int(r)) for n, r in payload["clients"]],
        validate=False,
    )
    pre = frozenset(int(v) for v in payload["pre"])
    capacity = int(payload["capacity"])
    solver = payload["solver"]
    if solver == "dp":
        result = replica_update(
            tree,
            capacity,
            pre,
            UniformCostModel(payload["create"], payload["delete"]),
        )
    elif solver == "greedy":
        result = greedy_placement(tree, capacity, preexisting=pre)
    elif solver == "dp_nopre":
        result = dp_nopre_placement(tree, capacity)
    else:  # pragma: no cover - guarded in solve_batch
        raise ConfigurationError(f"unknown solver policy {solver!r}")
    return {
        "schema": _RECORD_SCHEMA,
        "replicas": sorted(result.replicas),
    }


def _solve_chunk(payloads: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Worker entry point: solve a contiguous chunk of canonical payloads."""
    return [_solve_canonical(p) for p in payloads]


def _chunk(items: list, n_chunks: int) -> list[list]:
    """Split ``items`` into at most ``n_chunks`` contiguous, balanced runs."""
    n_chunks = max(1, min(n_chunks, len(items)))
    base, remainder = divmod(len(items), n_chunks)
    chunks, start = [], 0
    for i in range(n_chunks):
        size = base + (1 if i < remainder else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def solve_batch(
    instances: Sequence[BatchInstance],
    *,
    solver: str = "dp",
    workers: int = 1,
    cache: ResultCache | None = None,
    stats: BatchCacheStats | None = None,
) -> list[PlacementResult]:
    """Solve many instances with canonical dedupe, caching and parallelism.

    Parameters
    ----------
    instances:
        The batch; results are returned in the same order.
    solver:
        Policy from :data:`SOLVERS`.
    workers:
        Process-pool size for the unique cache misses; ``1`` solves
        in-process (deterministic and allocation-free, the right default
        for small batches).
    cache:
        Optional shared :class:`ResultCache`; pass one to reuse results
        across calls (and across processes via its disk tier).  Without a
        cache, dedupe still collapses duplicates *within* the batch.
    stats:
        Optional counter collector.  Defaults to ``cache.stats`` so cache
        lookups and dedupe folds land in one place.

    Returns
    -------
    list[PlacementResult]
        Verified placements in original node ids, priced with each
        instance's own cost model.
    """
    if solver not in SOLVERS:
        raise ConfigurationError(
            f"unknown solver policy {solver!r}; expected one of {SOLVERS}"
        )
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if stats is None:
        stats = cache.stats if cache is not None else BatchCacheStats()

    keys = [_instance_key(i, solver) for i in instances]
    canonicals = [c for c, _ in keys]
    digests = [d for _, d in keys]

    # Dedupe: first instance of each digest is the group representative.
    groups: dict[str, list[int]] = {}
    for idx, digest in enumerate(digests):
        groups.setdefault(digest, []).append(idx)
    stats.duplicates_folded += len(instances) - len(groups)

    # Cache lookups for unique digests; misses go to the solvers.  All
    # counters are routed into the one effective ``stats`` collector.
    records: dict[str, dict[str, Any]] = {}
    misses: list[tuple[str, dict[str, Any]]] = []
    for digest, idxs in groups.items():
        record = cache.get(digest, stats=stats) if cache is not None else None
        if record is not None:
            records[digest] = record
        else:
            if cache is None:
                stats.record_miss()
            rep = idxs[0]
            misses.append(
                (digest, _canonical_payload(canonicals[rep], instances[rep], solver))
            )

    if misses:
        payloads = [p for _, p in misses]
        if workers == 1 or len(payloads) == 1:
            solved = _solve_chunk(payloads)
        else:
            chunks = _chunk(payloads, workers)
            with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
                solved = [r for part in pool.map(_solve_chunk, chunks) for r in part]
        stats.unique_solved += len(payloads)
        for (digest, _), record in zip(misses, solved):
            records[digest] = record
            if cache is not None:
                cache.put(digest, record, stats=stats)

    # Fan out: map canonical replicas through each instance's inverse
    # relabelling, re-verify on the original tree and re-price.
    results: list[PlacementResult] = []
    for instance, canonical, digest in zip(instances, canonicals, digests):
        replicas = canonical.map_back(records[digest]["replicas"])
        cost = instance.cost_model.of_placement(replicas, instance.preexisting)
        results.append(
            PlacementResult.from_replicas(
                instance.tree,
                replicas,
                instance.capacity,
                instance.preexisting,
                cost=cost,
                extra={"digest": digest},
            )
        )
    return results
