"""High-throughput batch solving: canonical dedupe + cache + process pool.

:func:`solve_batch` turns the per-instance solvers into a serving-shaped
engine.  For a batch of :class:`~repro.batch.instance.BatchInstance`:

1. every instance is canonicalised (:mod:`repro.batch.canonical`) and
   keyed by its content digest — relabelled isomorphic duplicates collapse
   onto one key;
2. unique keys are looked up in an optional
   :class:`~repro.batch.cache.ResultCache` (LRU + sharded disk tier);
3. the remaining misses are solved — serially, or across a
   :class:`~concurrent.futures.ProcessPoolExecutor` in contiguous chunks
   (the chunk/merge discipline of :mod:`repro.experiments.parallel`);
4. canonical solutions are fanned back out through each instance's inverse
   relabelling and re-verified against the *original* tree, so a cache or
   mapping bug can never return an invalid placement silently.

Only relabelling-covariant data crosses process and disk boundaries —
the canonical replica set for the MinCost family, ``(cost, power,
canonical modes)`` triples for the power family; per-instance bookkeeping
is recomputed in O(N) during fan-out, which keeps cache records tiny and
JSON-able.

Everything solver-specific lives in :mod:`repro.batch.registry`: which
instance parameters enter the digest, how a canonical payload is solved,
and how records fan back out.  This module never dispatches on policy
names — adding a solver is a registry entry, not an executor fork.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor
from collections.abc import Sequence
from typing import Any

from repro.batch.cache import ResultCache
from repro.batch.canonical import Canonical
from repro.batch.instance import BatchInstance
from repro.batch.registry import get_policy
from repro.exceptions import ConfigurationError
from repro.perf.stats import BatchCacheStats

__all__ = ["instance_key", "solve_batch", "solve_one"]


def _solve_canonical(payload: dict[str, Any]) -> dict[str, Any]:
    """Solve one canonical payload via its policy's solver."""
    return get_policy(payload["solver"]).solve(payload)


def _solve_chunk(payloads: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Worker entry point: solve a contiguous chunk of canonical payloads."""
    return [_solve_canonical(p) for p in payloads]


def _chunk(items: list, n_chunks: int) -> list[list]:
    """Split ``items`` into at most ``n_chunks`` contiguous, balanced runs."""
    n_chunks = max(1, min(n_chunks, len(items)))
    base, remainder = divmod(len(items), n_chunks)
    chunks, start = [], 0
    for i in range(n_chunks):
        size = base + (1 if i < remainder else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def instance_key(
    instance: BatchInstance, *, solver: str = "dp"
) -> tuple[Canonical, str]:
    """Canonical form + per-policy content digest of one instance.

    Public wrapper around :meth:`repro.batch.registry.SolverPolicy
    .instance_key` (the same digest the serving tier keys request
    coalescing on) for callers that hold a solver *name* rather than a
    policy object — e.g. to predict cache keys or pre-group traffic
    before it reaches :func:`solve_batch`.
    """
    return get_policy(solver).instance_key(instance)


def solve_one(
    instance: BatchInstance,
    *,
    solver: str = "dp",
    cache: ResultCache | None = None,
    stats: BatchCacheStats | None = None,
) -> Any:
    """Solve a single instance through the batch pipeline.

    A batch of one: the full canonicalise → cache → verified fan-out
    machinery runs, so repeated calls against a shared ``cache`` behave
    like serving traffic.  For concurrent callers prefer the coalescing
    awaitable :meth:`repro.serve.BatchServer.submit`.
    """
    return solve_batch([instance], solver=solver, cache=cache, stats=stats)[0]


def solve_batch(
    instances: Sequence[BatchInstance],
    *,
    solver: str = "dp",
    workers: int = 1,
    cache: ResultCache | None = None,
    stats: BatchCacheStats | None = None,
    pool: Executor | None = None,
    records_out: dict[str, dict[str, Any]] | None = None,
) -> list[Any]:
    """Solve many instances with canonical dedupe, caching and parallelism.

    Parameters
    ----------
    instances:
        The batch; results are returned in the same order.
    solver:
        A registered policy name (:func:`repro.batch.available_solvers`).
    workers:
        Process-pool size for the unique cache misses; ``1`` solves
        in-process (deterministic and allocation-free, the right default
        for small batches).
    cache:
        Optional shared :class:`ResultCache`; pass one to reuse results
        across calls (and across processes via its disk tier).  Without a
        cache, dedupe still collapses duplicates *within* the batch.
    stats:
        Optional counter collector.  Defaults to ``cache.stats`` so cache
        lookups and dedupe folds land in one place.
    pool:
        Optional long-lived :class:`~concurrent.futures.Executor` to run
        miss chunks on instead of spawning a fresh process pool per call
        — the serving tier passes one shared pool so every micro-batch
        reuses warm workers.  ``workers`` still controls the chunking.
    records_out:
        Optional dict the executor fills with ``digest -> cache record``
        for every digest this call resolved (from cache or solved).  The
        serving tier uses it to complete coalesced waiters, which fan the
        shared canonical record out through their *own* relabelling.

    Returns
    -------
    list
        Verified per-instance results in original node ids, in input
        order.  The element type is policy-defined: the MinCost family
        returns :class:`~repro.core.solution.PlacementResult`,
        ``min_power`` / ``greedy_power`` return
        :class:`~repro.power.result.ModalPlacementResult` /
        :class:`~repro.power.greedy_power.GreedyPowerCandidates`, and
        ``power_frontier`` returns a full
        :class:`~repro.power.dp_power_pareto.PowerFrontier`.  Every
        result carries the canonical digest in its ``extra`` mapping.
    """
    policy = get_policy(solver)
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if stats is None:
        stats = cache.stats if cache is not None else BatchCacheStats()
    for index, instance in enumerate(instances):
        policy.check_instance(instance, index)

    keys = [policy.instance_key(i) for i in instances]
    canonicals = [c for c, _ in keys]
    digests = [d for _, d in keys]

    # Dedupe: first instance of each digest is the group representative.
    groups: dict[str, list[int]] = {}
    for idx, digest in enumerate(digests):
        groups.setdefault(digest, []).append(idx)
    stats.duplicates_folded += len(instances) - len(groups)

    # Cache lookups for unique digests; misses go to the solvers.  All
    # counters are routed into the one effective ``stats`` collector.
    records: dict[str, dict[str, Any]] = {}
    misses: list[tuple[str, dict[str, Any]]] = []
    for digest, idxs in groups.items():
        record = (
            cache.get(digest, stats=stats, schema=policy.record_schema)
            if cache is not None
            else None
        )
        if record is not None:
            records[digest] = record
        else:
            if cache is None:
                stats.record_miss()
            rep = idxs[0]
            misses.append(
                (digest, policy.payload(canonicals[rep], instances[rep]))
            )

    if misses:
        payloads = [p for _, p in misses]
        if pool is not None:
            chunks = _chunk(payloads, workers)
            solved = [r for part in pool.map(_solve_chunk, chunks) for r in part]
        elif workers == 1 or len(payloads) == 1:
            solved = _solve_chunk(payloads)
        else:
            chunks = _chunk(payloads, workers)
            with ProcessPoolExecutor(max_workers=len(chunks)) as own_pool:
                solved = [
                    r for part in own_pool.map(_solve_chunk, chunks) for r in part
                ]
        stats.unique_solved += len(payloads)
        for (digest, _), record in zip(misses, solved, strict=True):
            records[digest] = record
            if cache is not None:
                cache.put(digest, record, stats=stats)

    if records_out is not None:
        records_out.update(records)

    # Fan out: map canonical solutions through each instance's inverse
    # relabelling, re-verify on the original tree and re-price.
    return [
        policy.fan_out(instance, canonical, records[digest], digest)
        for instance, canonical, digest in zip(instances, canonicals, digests, strict=True)
    ]
