"""High-throughput batch solving: canonical dedupe + cache + supervised pool.

:func:`solve_batch` turns the per-instance solvers into a serving-shaped
engine.  For a batch of :class:`~repro.batch.instance.BatchInstance`:

1. every instance is canonicalised (:mod:`repro.batch.canonical`) and
   keyed by its content digest — relabelled isomorphic duplicates collapse
   onto one key;
2. unique keys are looked up in an optional
   :class:`~repro.batch.cache.ResultCache` (LRU + sharded disk tier);
3. the remaining misses are solved — serially, or across a *supervised*
   process pool (:class:`SupervisedPool`) in contiguous chunks (the
   chunk/merge discipline of :mod:`repro.experiments.parallel`);
4. canonical solutions are fanned back out through each instance's inverse
   relabelling and re-verified against the *original* tree, so a cache or
   mapping bug can never return an invalid placement silently.

Supervision (the fault-isolation layer)
---------------------------------------
Chunk futures carry an optional wall-clock deadline (``solve_timeout=``).
A hung or pool-breaking chunk is attributed to specific digests via
per-worker *journals* — each worker appends ``start``/``done`` marks to
its own append-only file before/after every canonical solve — so the
supervisor knows exactly which digests were in flight when the incident
happened.  Those suspects are then re-run one at a time in a throwaway
single-worker sandbox pool: a sandbox crash or deadline overrun convicts
the digest (typed :class:`~repro.exceptions.QuarantinedError` /
:class:`~repro.exceptions.SolveTimeoutError`, registered with the
optional :class:`~repro.batch.quarantine.QuarantineRegistry`), a clean
sandbox solve exonerates it and keeps the record.  The serving pool is
killed and rebuilt **once per incident**, completed results from other
chunks are never lost, and innocent bystander digests are re-queued for
the next wave.  Injected faults (:mod:`repro.faults`) are honoured at
the worker entry point, which is how the chaos suite drives this path
deterministically.

Only relabelling-covariant data crosses process and disk boundaries —
the canonical replica set for the MinCost family, ``(cost, power,
canonical modes)`` triples for the power family; per-instance bookkeeping
is recomputed in O(N) during fan-out, which keeps cache records tiny and
JSON-able.

Everything solver-specific lives in :mod:`repro.batch.registry`: which
instance parameters enter the digest, how a canonical payload is solved,
and how records fan back out.  This module never dispatches on policy
names — adding a solver is a registry entry, not an executor fork.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from collections.abc import Callable, Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures import TimeoutError as _FuturesTimeout
from pathlib import Path
from typing import Any

from repro.batch.cache import ResultCache
from repro.batch.canonical import Canonical
from repro.batch.instance import BatchInstance
from repro.batch.quarantine import QuarantineRegistry
from repro.batch.registry import get_policy
from repro.exceptions import (
    ConfigurationError,
    QuarantinedError,
    SolveTimeoutError,
)
from repro.faults import registry as _faults
from repro.perf.stats import BatchCacheStats

__all__ = ["SupervisedPool", "instance_key", "solve_batch", "solve_one"]

#: An incident-surviving digest is force-probed after this many re-runs,
#: even if its journal marks look innocent — guarantees wave progress.
_MAX_INCIDENT_RERUNS = 2

#: ``(digest, canonical payload)`` pair routed to workers.
_Item = tuple[str, dict[str, Any]]
#: Per-digest worker outcome: ``("ok", record)`` or ``("error", exc)``.
_Outcome = tuple[str, Any]


def _solve_canonical(payload: dict[str, Any]) -> dict[str, Any]:
    """Solve one canonical payload via its policy's solver."""
    return get_policy(payload["solver"]).solve(payload)


# -- worker side -------------------------------------------------------

# Set by the pool initializer inside SupervisedPool workers; None in the
# parent process and in foreign (caller-supplied plain Executor) pools,
# where journal marks are a no-op.
_journal_path: str | None = None


def _init_worker(journal_dir: str) -> None:
    global _journal_path
    _journal_path = os.path.join(journal_dir, f"worker-{os.getpid()}.journal")


def _mark(event: str, digest: str) -> None:
    """Append one journal mark, flush-safe against SIGKILL."""
    if _journal_path is None:
        return
    with open(_journal_path, "a", encoding="utf-8") as fh:
        fh.write(f"{event} {digest}\n")


def _solve_entry(items: list[_Item]) -> list[_Outcome]:
    """Worker entry point: solve a chunk, one journalled outcome per digest.

    Per-digest exceptions are *captured* (not raised) so one failing
    payload cannot poison the attribution of its chunk-mates; only a
    process death (segfault, injected SIGKILL) escapes, and that is
    exactly what the journal marks attribute.
    """
    plan = _faults.active_plan()
    outcomes: list[_Outcome] = []
    for digest, payload in items:
        _mark("start", digest)
        try:
            if plan is not None:
                plan.on_solve(digest)
            record = _solve_canonical(payload)
        except Exception as exc:  # noqa: BLE001 — carried as data to the parent
            _mark("done", digest)
            outcomes.append(("error", exc))
            continue
        _mark("done", digest)
        outcomes.append(("ok", record))
    return outcomes


# -- supervisor side ---------------------------------------------------


def _kill_executor(pool: ProcessPoolExecutor) -> None:
    """Tear a process pool down *now*, SIGKILLing live workers.

    ``shutdown(cancel_futures=True)`` alone never interrupts a chunk
    that is already running — a wedged solve would block forever — so
    the worker processes are killed explicitly.
    """
    processes = getattr(pool, "_processes", None)
    procs = list(processes.values()) if processes else []
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        if proc.is_alive():
            proc.kill()


class SupervisedPool:
    """A rebuildable process pool with per-digest solve journals.

    Wraps a :class:`~concurrent.futures.ProcessPoolExecutor` whose
    workers journal ``start``/``done`` marks per canonical digest into a
    pool-owned directory.  :meth:`rebuild` SIGKILLs the workers and
    recreates the executor — the recovery primitive behind
    ``solve_timeout`` and poison-instance attribution.  The serving tier
    keeps one long-lived instance (warm workers across micro-batches);
    :func:`solve_batch` builds an ephemeral one when handed none.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.rebuilds = 0
        self._dir = Path(tempfile.mkdtemp(prefix="repro-journal-"))
        # One supervised run at a time: journals are per-wave state.
        self._owner_lock = threading.Lock()
        self._pool = self._build()

    def _build(self) -> ProcessPoolExecutor:
        self._clear_journals()
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(str(self._dir),),
        )

    def _clear_journals(self) -> None:
        for path in self._dir.glob("worker-*.journal"):
            try:
                path.unlink()
            except OSError:
                pass

    def submit(self, chunk: list[_Item]) -> Future[list[_Outcome]]:
        return self._pool.submit(_solve_entry, chunk)

    def begin_wave(self) -> None:
        """Reset journals; call only between waves (no chunks in flight)."""
        self._clear_journals()

    def journal_marks(self) -> dict[str, str]:
        """Last mark per digest (``"start"`` or ``"done"``) this wave."""
        marks: dict[str, str] = {}
        for path in sorted(self._dir.glob("worker-*.journal")):
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue
            for line in text.splitlines():
                event, _, digest = line.partition(" ")
                if digest:
                    marks[digest] = event
        return marks

    def rebuild(self) -> None:
        """Kill every worker and recreate the executor (one incident)."""
        self.rebuilds += 1
        _kill_executor(self._pool)
        self._pool = self._build()

    def shutdown(self) -> None:
        """Graceful teardown; any wedged worker was already killed by
        the incident that detected it, so waiting is safe."""
        self._pool.shutdown(wait=True)
        shutil.rmtree(self._dir, ignore_errors=True)


def _chunk(items: list[Any], n_chunks: int) -> list[list[Any]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, balanced runs."""
    n_chunks = max(1, min(n_chunks, len(items)))
    base, remainder = divmod(len(items), n_chunks)
    chunks, start = [], 0
    for i in range(n_chunks):
        size = base + (1 if i < remainder else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def _probe_digest(
    item: _Item, solve_timeout: float | None
) -> tuple[str, Any]:
    """Re-run one suspect digest alone in a throwaway sandbox pool.

    Exactly one digest is in flight, so whatever happens is *proof*:
    returns ``("ok", record)`` / ``("error", exc)`` on a clean run,
    ``("crash", None)`` when the sandbox pool breaks, ``("timeout",
    None)`` when the probe overruns the deadline.
    """
    sandbox = ProcessPoolExecutor(max_workers=1)
    try:
        future = sandbox.submit(_solve_entry, [item])
        try:
            outcomes = future.result(timeout=solve_timeout)
        except _FuturesTimeout:
            return ("timeout", None)
        except BrokenExecutor:
            return ("crash", None)
        return outcomes[0]
    finally:
        _kill_executor(sandbox)


def _run_supervised(
    sup: SupervisedPool,
    misses: list[_Item],
    *,
    solve_timeout: float | None,
    quarantine: QuarantineRegistry | None,
    stats: BatchCacheStats,
    take: Callable[[str, dict[str, Any]], None],
    errors: dict[str, Exception],
) -> None:
    """Drive ``misses`` through the supervised pool in waves.

    Completed chunk results are absorbed through ``take`` as their
    futures finish, so an incident never discards work that other
    chunks already did.  On a deadline overrun or pool break the
    journals pick the suspect digests, the pool is rebuilt exactly
    once, suspects are convicted or exonerated in a sandbox, and the
    surviving digests re-run in the next wave.
    """
    pending: dict[str, dict[str, Any]] = dict(misses)
    reruns: dict[str, int] = {}
    with sup._owner_lock:
        while pending:
            sup.begin_wave()
            chunks = _chunk(list(pending.items()), sup.workers)
            futures: dict[Future[list[_Outcome]], list[_Item]] = {
                sup.submit(chunk): chunk for chunk in chunks
            }
            deadline = (
                None if solve_timeout is None else time.monotonic() + solve_timeout
            )
            incident: str | None = None
            while futures:
                timeout = (
                    None
                    if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                done, _ = wait(
                    set(futures), timeout=timeout, return_when=FIRST_COMPLETED
                )
                if not done:
                    incident = "timeout"
                    break
                broken = False
                for future in done:
                    chunk = futures.pop(future)
                    try:
                        outcomes = future.result()
                    except BrokenExecutor:
                        broken = True
                        continue  # journals will attribute this chunk
                    except Exception as exc:  # pragma: no cover — defensive
                        for digest, _ in chunk:
                            pending.pop(digest, None)
                            errors[digest] = exc
                        continue
                    for (digest, _), (kind, value) in zip(
                        chunk, outcomes, strict=True
                    ):
                        pending.pop(digest, None)
                        if kind == "ok":
                            take(digest, value)
                        else:
                            errors[digest] = value
                if broken:
                    incident = "crash"
                    break
            if incident is None:
                return

            # -- incident: attribute, rebuild once, sandbox the suspects
            marks = sup.journal_marks()
            suspects = [d for d in pending if marks.get(d) == "start"]
            for digest in pending:
                reruns[digest] = reruns.get(digest, 0) + 1
                if (
                    digest not in suspects
                    and reruns[digest] > _MAX_INCIDENT_RERUNS
                ):
                    # Survived several incidents with innocent-looking
                    # marks (e.g. dies after its ``done`` mark): force a
                    # sandbox verdict rather than looping forever.
                    suspects.append(digest)
            sup.rebuild()
            stats.pool_rebuilds += 1
            if not suspects and incident == "timeout":
                # Nothing even started before the deadline — the pool
                # itself is wedged; fail the wave rather than spin.
                for digest in list(pending):
                    del pending[digest]
                    errors[digest] = SolveTimeoutError(
                        f"solve pool made no progress within "
                        f"{solve_timeout}s deadline for digest {digest[:12]}",
                        digests=(digest,),
                    )
                continue
            for digest in suspects:
                payload = pending.pop(digest)
                kind, value = _probe_digest((digest, payload), solve_timeout)
                if kind == "ok":
                    take(digest, value)  # innocent bystander, keep result
                elif kind == "error":
                    errors[digest] = value
                elif kind == "timeout":
                    stats.solve_timeouts += 1
                    if quarantine is not None:
                        quarantine.add(digest, "timeout", stats=stats)
                    errors[digest] = SolveTimeoutError(
                        f"solve of digest {digest[:12]} exceeded the "
                        f"{solve_timeout}s deadline; digest quarantined",
                        digests=(digest,),
                    )
                else:  # crash
                    if quarantine is not None:
                        quarantine.add(digest, "crash", stats=stats)
                    errors[digest] = QuarantinedError(
                        f"digest {digest[:12]} killed its solver process; "
                        f"digest quarantined",
                        digest=digest,
                        reason="crash",
                    )
            # Innocent digests (never started, or finished but their
            # chunk's results were lost with the broken pool) remain in
            # ``pending`` and re-run in the next wave.


def instance_key(
    instance: BatchInstance, *, solver: str = "dp"
) -> tuple[Canonical, str]:
    """Canonical form + per-policy content digest of one instance.

    Public wrapper around :meth:`repro.batch.registry.SolverPolicy
    .instance_key` (the same digest the serving tier keys request
    coalescing on) for callers that hold a solver *name* rather than a
    policy object — e.g. to predict cache keys or pre-group traffic
    before it reaches :func:`solve_batch`.
    """
    return get_policy(solver).instance_key(instance)


def solve_one(
    instance: BatchInstance,
    *,
    solver: str = "dp",
    cache: ResultCache | None = None,
    stats: BatchCacheStats | None = None,
) -> Any:
    """Solve a single instance through the batch pipeline.

    A batch of one: the full canonicalise → cache → verified fan-out
    machinery runs, so repeated calls against a shared ``cache`` behave
    like serving traffic.  For concurrent callers prefer the coalescing
    awaitable :meth:`repro.serve.BatchServer.submit`.
    """
    return solve_batch([instance], solver=solver, cache=cache, stats=stats)[0]


def solve_batch(
    instances: Sequence[BatchInstance],
    *,
    solver: str = "dp",
    workers: int = 1,
    cache: ResultCache | None = None,
    stats: BatchCacheStats | None = None,
    pool: Executor | SupervisedPool | None = None,
    records_out: dict[str, dict[str, Any]] | None = None,
    errors_out: dict[str, Exception] | None = None,
    solve_timeout: float | None = None,
    quarantine: QuarantineRegistry | None = None,
) -> list[Any]:
    """Solve many instances with canonical dedupe, caching and parallelism.

    Parameters
    ----------
    instances:
        The batch; results are returned in the same order.
    solver:
        A registered policy name (:func:`repro.batch.available_solvers`).
    workers:
        Process-pool size for the unique cache misses; ``1`` solves
        in-process (deterministic and allocation-free, the right default
        for small batches) unless ``solve_timeout`` forces supervision.
    cache:
        Optional shared :class:`ResultCache`; pass one to reuse results
        across calls (and across processes via its disk tier).  Without a
        cache, dedupe still collapses duplicates *within* the batch.
    stats:
        Optional counter collector.  Defaults to ``cache.stats`` so cache
        lookups and dedupe folds land in one place.
    pool:
        Optional long-lived pool to run miss chunks on instead of
        spawning a fresh one per call — the serving tier passes one
        shared :class:`SupervisedPool` so every micro-batch reuses warm
        workers and one quarantine discipline.  A plain
        :class:`~concurrent.futures.Executor` is still accepted for
        caller-managed pools, but cannot carry ``solve_timeout``.
        ``workers`` still controls the chunking.
    records_out:
        Optional dict the executor fills with ``digest -> cache record``
        for every digest this call resolved (from cache or solved).
        Solved records are published *incrementally* — a caller sees
        every completed chunk's records even when a later digest in the
        same batch fails.  The serving tier uses it to complete
        coalesced waiters, which fan the shared canonical record out
        through their *own* relabelling.
    errors_out:
        Optional dict collecting ``digest -> typed exception`` for
        digests that failed (quarantined, timed out, solver error).
        When given, failures are *captured* — the returned list holds
        ``None`` at the failed instances' positions — instead of
        raising; when omitted, the first failing digest in input order
        raises after the remaining digests have been solved and cached.
    solve_timeout:
        Wall-clock deadline in seconds for each supervised solve wave.
        A chunk that overruns it gets its pool killed + rebuilt and the
        culprit digest raises :class:`~repro.exceptions
        .SolveTimeoutError` (wire ``code: "timeout"``); other chunks'
        completed results are kept.  Requires pool supervision: with
        ``workers=1`` and no ``pool`` a single-worker
        :class:`SupervisedPool` is spun up for the misses.
    quarantine:
        Optional :class:`~repro.batch.quarantine.QuarantineRegistry`.
        Digests already quarantined fail fast with
        :class:`~repro.exceptions.QuarantinedError` *before* reaching a
        pool; digests convicted of crashing/hanging this call are added.

    Returns
    -------
    list
        Verified per-instance results in original node ids, in input
        order.  The element type is policy-defined: the MinCost family
        returns :class:`~repro.core.solution.PlacementResult`,
        ``min_power`` / ``greedy_power`` return
        :class:`~repro.power.result.ModalPlacementResult` /
        :class:`~repro.power.greedy_power.GreedyPowerCandidates`, and
        ``power_frontier`` returns a full
        :class:`~repro.power.dp_power_pareto.PowerFrontier`.  Every
        result carries the canonical digest in its ``extra`` mapping.
        With ``errors_out``, failed instances yield ``None``.
    """
    policy = get_policy(solver)
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if solve_timeout is not None and solve_timeout <= 0:
        raise ConfigurationError(
            f"solve_timeout must be positive, got {solve_timeout}"
        )
    if (
        solve_timeout is not None
        and pool is not None
        and not isinstance(pool, SupervisedPool)
    ):
        raise ConfigurationError(
            "solve_timeout requires a SupervisedPool (or no pool): a plain "
            "Executor cannot be killed and rebuilt mid-batch"
        )
    if stats is None:
        stats = cache.stats if cache is not None else BatchCacheStats()
    for index, instance in enumerate(instances):
        policy.check_instance(instance, index)

    keys = [policy.instance_key(i) for i in instances]
    canonicals = [c for c, _ in keys]
    digests = [d for _, d in keys]

    # Dedupe: first instance of each digest is the group representative.
    groups: dict[str, list[int]] = {}
    for idx, digest in enumerate(digests):
        groups.setdefault(digest, []).append(idx)
    stats.duplicates_folded += len(instances) - len(groups)

    errors: dict[str, Exception] = errors_out if errors_out is not None else {}

    # Cache lookups for unique digests; misses go to the solvers.  All
    # counters are routed into the one effective ``stats`` collector.
    # Quarantined digests fail fast here — before they can reach a pool.
    records: dict[str, dict[str, Any]] = {}
    misses: list[_Item] = []
    for digest, idxs in groups.items():
        record = (
            cache.get(digest, stats=stats, schema=policy.record_schema)
            if cache is not None
            else None
        )
        if record is not None:
            records[digest] = record
        else:
            if cache is None:
                stats.record_miss()
            if quarantine is not None:
                try:
                    quarantine.check(digest, stats=stats)
                except QuarantinedError as exc:
                    if errors_out is None:
                        raise
                    errors[digest] = exc
                    continue
            rep = idxs[0]
            misses.append(
                (digest, policy.payload(canonicals[rep], instances[rep]))
            )

    if misses:

        def _take(digest: str, record: dict[str, Any]) -> None:
            stats.unique_solved += 1
            records[digest] = record
            if cache is not None:
                cache.put(digest, record, stats=stats)
            if records_out is not None:
                records_out[digest] = record

        def _absorb(chunk: list[_Item], outcomes: list[_Outcome]) -> None:
            for (digest, _), (kind, value) in zip(chunk, outcomes, strict=True):
                if kind == "ok":
                    _take(digest, value)
                else:
                    errors[digest] = value

        if isinstance(pool, SupervisedPool):
            _run_supervised(
                pool,
                misses,
                solve_timeout=solve_timeout,
                quarantine=quarantine,
                stats=stats,
                take=_take,
                errors=errors,
            )
        elif pool is not None:
            # Caller-managed plain Executor: chunked, journal-free.
            chunks = _chunk(misses, workers)
            for chunk, outcomes in zip(
                chunks, pool.map(_solve_entry, chunks), strict=True
            ):
                _absorb(chunk, outcomes)
        elif solve_timeout is None and (workers == 1 or len(misses) == 1):
            _absorb(misses, _solve_entry(misses))
        else:
            own = SupervisedPool(min(workers, len(misses)))
            try:
                _run_supervised(
                    own,
                    misses,
                    solve_timeout=solve_timeout,
                    quarantine=quarantine,
                    stats=stats,
                    take=_take,
                    errors=errors,
                )
            finally:
                own.shutdown()

    if errors and errors_out is None:
        for digest in digests:
            if digest in errors:
                raise errors[digest]

    if records_out is not None:
        records_out.update(records)

    # Fan out: map canonical solutions through each instance's inverse
    # relabelling, re-verify on the original tree and re-price.
    results: list[Any] = []
    for instance, canonical, digest in zip(
        instances, canonicals, digests, strict=True
    ):
        record = records.get(digest)
        if record is None:
            results.append(None)
            continue
        try:
            results.append(policy.fan_out(instance, canonical, record, digest))
        except Exception as exc:
            if errors_out is None:
                raise
            errors[digest] = exc
            results.append(None)
    return results
