"""Batch instances: one solver request plus (de)serialisation helpers.

A :class:`BatchInstance` bundles everything :func:`repro.batch.solve_batch`
needs to answer one placement question — the tree (structure + workload),
the capacity, the pre-existing server set and the Equation-2 cost model.
The solver *policy* (dp / greedy / dp_nopre) is chosen per batch, not per
instance, mirroring how a serving tier routes traffic.

The JSON schema wraps the versioned tree schema of
:mod:`repro.tree.serialize` so saved batches stay loadable:

.. code-block:: python

    {
        "schema": 1,
        "instances": [
            {"tree": {...}, "capacity": 10,
             "preexisting": [3, 7], "create": 0.1, "delete": 0.01},
        ],
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.core.costs import UniformCostModel
from repro.exceptions import ConfigurationError
from repro.tree.generators import paper_tree, random_preexisting
from repro.tree.model import Tree
from repro.tree.serialize import tree_from_dict, tree_to_dict
from repro.batch.canonical import relabel_tree

__all__ = [
    "BatchInstance",
    "batch_from_json",
    "batch_to_json",
    "instance_from_dict",
    "instance_to_dict",
    "random_batch",
]

_SCHEMA = 1


@dataclass(frozen=True)
class BatchInstance:
    """One placement request for the batch executor."""

    tree: Tree
    capacity: int
    preexisting: frozenset[int] = frozenset()
    cost_model: UniformCostModel = field(default_factory=UniformCostModel)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {self.capacity}"
            )
        object.__setattr__(
            self, "preexisting", frozenset(int(v) for v in self.preexisting)
        )


def instance_to_dict(instance: BatchInstance) -> dict[str, Any]:
    """Serialize one instance to a JSON-friendly dict."""
    return {
        "tree": tree_to_dict(instance.tree),
        "capacity": instance.capacity,
        "preexisting": sorted(instance.preexisting),
        "create": instance.cost_model.create,
        "delete": instance.cost_model.delete,
    }


def instance_from_dict(data: Mapping[str, Any]) -> BatchInstance:
    """Inverse of :func:`instance_to_dict`."""
    try:
        return BatchInstance(
            tree=tree_from_dict(data["tree"]),
            capacity=int(data["capacity"]),
            preexisting=frozenset(int(v) for v in data.get("preexisting", ())),
            cost_model=UniformCostModel(
                float(data.get("create", 0.1)), float(data.get("delete", 0.01))
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed batch instance: {exc}") from exc


def batch_to_json(
    instances: Sequence[BatchInstance], *, indent: int | None = None
) -> str:
    """Serialize a batch of instances to JSON text."""
    payload = {
        "schema": _SCHEMA,
        "instances": [instance_to_dict(i) for i in instances],
    }
    return json.dumps(payload, indent=indent)


def batch_from_json(text: str) -> list[BatchInstance]:
    """Parse a batch written by :func:`batch_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid JSON: {exc}") from exc
    if payload.get("schema") != _SCHEMA:
        raise ConfigurationError(
            f"unsupported batch schema {payload.get('schema')}"
        )
    raw = payload.get("instances")
    if not isinstance(raw, list):
        raise ConfigurationError("batch payload has no 'instances' list")
    return [instance_from_dict(d) for d in raw]


def random_batch(
    n_instances: int,
    *,
    duplicate_rate: float = 0.0,
    n_nodes: int = 60,
    capacity: int = 10,
    n_preexisting: int = 8,
    cost_model: UniformCostModel | None = None,
    rng: np.random.Generator | int | None = None,
) -> list[BatchInstance]:
    """Generate a demo/benchmark batch with a controlled duplicate rate.

    ``duplicate_rate`` of the instances are relabelled isomorphic copies of
    the unique ones — *not* byte-identical payloads — so they exercise the
    canonical hashing rather than trivial memoisation.  The returned order
    is shuffled.
    """
    if n_instances < 1:
        raise ConfigurationError(
            f"n_instances must be >= 1, got {n_instances}"
        )
    if not (0.0 <= duplicate_rate < 1.0):
        raise ConfigurationError(
            f"duplicate_rate must be in [0, 1), got {duplicate_rate}"
        )
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    cm = cost_model or UniformCostModel()
    n_unique = max(1, round(n_instances * (1.0 - duplicate_rate)))
    base: list[BatchInstance] = []
    for _ in range(min(n_unique, n_instances)):
        tree = paper_tree(n_nodes, rng=gen)
        pre = random_preexisting(tree, min(n_preexisting, n_nodes), rng=gen)
        base.append(BatchInstance(tree, capacity, pre, cm))
    out = list(base)
    while len(out) < n_instances:
        src = base[int(gen.integers(len(base)))]
        perm = gen.permutation(src.tree.n_nodes)
        tree, pre = relabel_tree(src.tree, perm, src.preexisting)
        out.append(BatchInstance(tree, src.capacity, pre, src.cost_model))
    return [out[i] for i in gen.permutation(len(out))]
