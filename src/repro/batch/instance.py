"""Batch instances: one solver request plus (de)serialisation helpers.

A :class:`BatchInstance` bundles everything :func:`repro.batch.solve_batch`
needs to answer one placement question — the tree (structure + workload),
the capacity, the pre-existing server set and the Equation-2 cost model,
plus (for the power policies) the Equation-3 power model, the Equation-4
modal cost model and the pre-existing servers' old modes.  The solver
*policy* (see :mod:`repro.batch.registry`) is chosen per batch, not per
instance, mirroring how a serving tier routes traffic.

The JSON schema wraps the versioned tree schema of
:mod:`repro.tree.serialize` so saved batches stay loadable:

.. code-block:: python

    {
        "schema": 2,
        "instances": [
            {"tree": {...}, "capacity": 10,
             "preexisting": [3, 7], "create": 0.1, "delete": 0.01,
             # optional power fields:
             "power": {"capacities": [5, 10], "static_power": 12.5,
                       "alpha": 3.0, "capacity_scale": 1.0},
             "modal_cost": {"create": [...], "delete": [...],
                            "changed": [[...], ...]},
             "preexisting_modes": [[3, 1], [7, 0]]},
        ],
    }

Schema-1 batches (no power fields) remain loadable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence
from typing import Any

import numpy as np

from repro.core.costs import ModalCostModel, UniformCostModel
from repro.exceptions import ConfigurationError
from repro.power.modes import PowerModel
from repro.power.serialize import (
    modal_cost_model_from_dict,
    modal_cost_model_to_dict,
    power_model_from_dict,
    power_model_to_dict,
)
from repro.tree.generators import paper_tree, random_preexisting
from repro.tree.model import Tree
from repro.tree.serialize import tree_from_dict, tree_to_dict
from repro.batch.canonical import relabel_tree

__all__ = [
    "BatchInstance",
    "batch_from_json",
    "batch_to_json",
    "instance_from_dict",
    "instance_to_dict",
    "random_batch",
]

_SCHEMA = 2
_ACCEPTED_SCHEMAS = (1, 2)


@dataclass(frozen=True)
class BatchInstance:
    """One placement request for the batch executor.

    The power fields are optional: MinCost policies ignore them, power
    policies require :attr:`power_model` (the executor enforces this).
    ``preexisting_modes`` carries the old mode of each pre-existing
    server; when omitted, power policies assume the lowest mode for every
    server in :attr:`preexisting` (see :meth:`pre_modes`).
    """

    tree: Tree
    capacity: int
    preexisting: frozenset[int] = frozenset()
    cost_model: UniformCostModel = field(default_factory=UniformCostModel)
    power_model: PowerModel | None = None
    modal_cost_model: ModalCostModel | None = None
    preexisting_modes: tuple[tuple[int, int], ...] | None = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {self.capacity}"
            )
        object.__setattr__(
            self, "preexisting", frozenset(int(v) for v in self.preexisting)
        )
        if self.preexisting_modes is not None:
            items = (
                self.preexisting_modes.items()
                if isinstance(self.preexisting_modes, Mapping)
                else tuple(self.preexisting_modes)  # type: ignore[assignment]
            )
            modes = tuple(sorted((int(v), int(m)) for v, m in items))
            object.__setattr__(self, "preexisting_modes", modes)
            keys = frozenset(v for v, _ in modes)
            if len(keys) != len(modes):
                raise ConfigurationError(
                    "preexisting_modes assigns multiple modes to one server"
                )
            if self.preexisting and keys != self.preexisting:
                raise ConfigurationError(
                    "preexisting_modes keys must match the preexisting set"
                )
            object.__setattr__(self, "preexisting", keys)
        n_modes = (
            None if self.power_model is None else self.power_model.modes.n_modes
        )
        if (
            self.modal_cost_model is not None
            and n_modes is not None
            and self.modal_cost_model.n_modes != n_modes
        ):
            raise ConfigurationError(
                f"modal cost model covers {self.modal_cost_model.n_modes} "
                f"modes but the power model has {n_modes}"
            )
        if n_modes is not None and self.preexisting_modes is not None:
            for v, m in self.preexisting_modes:
                if not (0 <= m < n_modes):
                    raise ConfigurationError(
                        f"pre-existing server {v} has invalid mode {m}"
                    )

    def pre_modes(self) -> dict[int, int]:
        """``{node: old_mode}`` for the power solvers.

        Servers without an explicit mode default to the lowest mode, so a
        plain pre-existing set behaves like the all-modes-0 mapping.
        """
        if self.preexisting_modes is not None:
            return dict(self.preexisting_modes)
        return {v: 0 for v in self.preexisting}

    def effective_modal_cost(self) -> ModalCostModel:
        """The Equation-4 cost model the power policies should price with.

        Falls back to a uniform modal model derived from the instance's
        Equation-2 prices (the simplification noted in the paper's §2.2)
        when no explicit :attr:`modal_cost_model` is set.
        """
        if self.modal_cost_model is not None:
            return self.modal_cost_model
        if self.power_model is None:
            raise ConfigurationError(
                "instance has no power model; modal costs are undefined"
            )
        return ModalCostModel.uniform(
            self.power_model.modes.n_modes,
            create=self.cost_model.create,
            delete=self.cost_model.delete,
        )


def instance_to_dict(instance: BatchInstance) -> dict[str, Any]:
    """Serialize one instance to a JSON-friendly dict."""
    out: dict[str, Any] = {
        "tree": tree_to_dict(instance.tree),
        "capacity": instance.capacity,
        "preexisting": sorted(instance.preexisting),
        "create": instance.cost_model.create,
        "delete": instance.cost_model.delete,
    }
    if instance.power_model is not None:
        out["power"] = power_model_to_dict(instance.power_model)
    if instance.modal_cost_model is not None:
        out["modal_cost"] = modal_cost_model_to_dict(instance.modal_cost_model)
    if instance.preexisting_modes is not None:
        out["preexisting_modes"] = [list(p) for p in instance.preexisting_modes]
    return out


def instance_from_dict(data: Mapping[str, Any]) -> BatchInstance:
    """Inverse of :func:`instance_to_dict`."""
    try:
        pre_modes = data.get("preexisting_modes")
        return BatchInstance(
            tree=tree_from_dict(data["tree"]),
            capacity=int(data["capacity"]),
            preexisting=frozenset(int(v) for v in data.get("preexisting", ())),
            cost_model=UniformCostModel(
                float(data.get("create", 0.1)), float(data.get("delete", 0.01))
            ),
            power_model=(
                power_model_from_dict(data["power"]) if "power" in data else None
            ),
            modal_cost_model=(
                modal_cost_model_from_dict(data["modal_cost"])
                if "modal_cost" in data
                else None
            ),
            preexisting_modes=(
                None
                if pre_modes is None
                else tuple((int(v), int(m)) for v, m in pre_modes)
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed batch instance: {exc}") from exc


def batch_to_json(
    instances: Sequence[BatchInstance], *, indent: int | None = None
) -> str:
    """Serialize a batch of instances to JSON text."""
    payload = {
        "schema": _SCHEMA,
        "instances": [instance_to_dict(i) for i in instances],
    }
    return json.dumps(payload, indent=indent)


def batch_from_json(text: str) -> list[BatchInstance]:
    """Parse a batch written by :func:`batch_to_json` (schema 1 or 2)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid JSON: {exc}") from exc
    if payload.get("schema") not in _ACCEPTED_SCHEMAS:
        raise ConfigurationError(
            f"unsupported batch schema {payload.get('schema')}"
        )
    raw = payload.get("instances")
    if not isinstance(raw, list):
        raise ConfigurationError("batch payload has no 'instances' list")
    return [instance_from_dict(d) for d in raw]


def random_batch(
    n_instances: int,
    *,
    duplicate_rate: float = 0.0,
    n_nodes: int = 60,
    capacity: int = 10,
    n_preexisting: int = 8,
    cost_model: UniformCostModel | None = None,
    power_model: PowerModel | None = None,
    modal_cost_model: ModalCostModel | None = None,
    rng: np.random.Generator | int | None = None,
) -> list[BatchInstance]:
    """Generate a demo/benchmark batch with a controlled duplicate rate.

    ``duplicate_rate`` of the instances are relabelled isomorphic copies of
    the unique ones — *not* byte-identical payloads — so they exercise the
    canonical hashing rather than trivial memoisation.  Whenever the rate
    is nonzero (and the batch has more than one instance) at least one
    duplicate is emitted, even when rounding would fill the batch with
    unique instances.  The returned order is shuffled.
    """
    if n_instances < 1:
        raise ConfigurationError(
            f"n_instances must be >= 1, got {n_instances}"
        )
    if not (0.0 <= duplicate_rate < 1.0):
        raise ConfigurationError(
            f"duplicate_rate must be in [0, 1), got {duplicate_rate}"
        )
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    cm = cost_model or UniformCostModel()
    n_unique = max(1, round(n_instances * (1.0 - duplicate_rate)))
    if duplicate_rate > 0.0 and n_instances > 1:
        # round() must not swallow the requested duplication on small
        # batches: a nonzero rate guarantees at least one duplicate.
        n_unique = min(n_unique, n_instances - 1)
    base: list[BatchInstance] = []
    for _ in range(min(n_unique, n_instances)):
        tree = paper_tree(n_nodes, rng=gen)
        pre = random_preexisting(tree, min(n_preexisting, n_nodes), rng=gen)
        base.append(
            BatchInstance(
                tree, capacity, pre, cm, power_model, modal_cost_model
            )
        )
    out = list(base)
    while len(out) < n_instances:
        src = base[int(gen.integers(len(base)))]
        perm = gen.permutation(src.tree.n_nodes)
        tree, pre = relabel_tree(src.tree, perm, src.preexisting)
        out.append(
            BatchInstance(
                tree,
                src.capacity,
                pre,
                src.cost_model,
                src.power_model,
                src.modal_cost_model,
            )
        )
    return [out[i] for i in gen.permutation(len(out))]
