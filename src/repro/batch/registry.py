"""Pluggable solver-policy registry for the batch pipeline.

A *solver policy* teaches :func:`repro.batch.solve_batch` how to serve one
solver family through the canonical dedupe → cache → process pool →
fan-out pipeline.  Each policy declares three things:

1. **digest fields** — which instance parameters its *solution set*
   actually consumes (:attr:`SolverPolicy.digest_fields`).  Parameters
   that only enter per-instance bookkeeping (recomputed during fan-out)
   stay out of the digest, so equivalent requests share one cached
   solve: greedy and dp_nopre ignore the pre-existing set and the cost
   model; the power policies ignore ``capacity`` (their capacity comes
   from the mode set).
2. **solve** — how to turn a picklable canonical payload into a small
   JSON-able cache record (:meth:`SolverPolicy.payload` builds the
   payload, :meth:`SolverPolicy.solve` runs in a worker process).
3. **fan-out** — how to map a record back through an instance's inverse
   relabelling into a verified, per-instance-priced result object
   (:meth:`SolverPolicy.fan_out`).

Registering a new solver is a registry entry, not a fork of the
executor:

.. code-block:: python

    from repro.batch.registry import SolverPolicy, register_policy

    class MyPolicy(SolverPolicy):
        name = "my_solver"
        digest_fields = frozenset({"capacity"})
        ...

    register_policy(MyPolicy())

Built-in policies: ``dp`` (MinCost-WithPre, Theorem 1), ``greedy`` (GR
baseline), ``dp_nopre``, and the §4 power family — ``min_power``,
``power_frontier`` (both backed by the exact Pareto frontier engine;
they share cache records via :attr:`SolverPolicy.digest_name`) and
``greedy_power`` (the §5.2 GR capacity sweep).

Worker-process note: the built-in policies are registered at import
time, so process-pool workers resolve them by name.  Custom policies
registered from ``__main__`` are visible to workers under the default
``fork`` start method on POSIX; under ``spawn`` register them in an
importable module.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from repro.batch.canonical import Canonical, canonicalize, instance_digest
from repro.batch.instance import BatchInstance
from repro.core.costs import UniformCostModel
from repro.core.dp_nopre import dp_nopre_placement
from repro.core.dp_withpre import replica_update
from repro.core.greedy import greedy_placement
from repro.core.solution import PlacementResult
from repro.exceptions import ConfigurationError, SolverError
from repro.perf.stats import ParetoDPStats
from repro.power.dp_power_pareto import PowerFrontier
from repro.power.greedy_power import (
    GreedyPowerCandidates,
    greedy_power_candidates,
)
from repro.power.kernels import DEFAULT_KERNEL, KERNELS, resolve_kernel
from repro.power.result import ModalPlacementResult, modal_from_replicas
from repro.power.serialize import (
    modal_cost_model_from_dict,
    modal_cost_model_to_dict,
    power_model_from_dict,
    power_model_to_dict,
)
from repro.tree.model import Tree

__all__ = [
    "SolverPolicy",
    "available_solvers",
    "get_policy",
    "register_policy",
]

#: Digest-field names a policy may declare.
_DIGEST_FIELD_NAMES = frozenset(
    {"capacity", "preexisting", "cost_model", "power"}
)

_PRICE_EPS = 1e-6


class SolverPolicy:
    """Contract between one solver family and the batch pipeline.

    Subclasses set the class attributes and implement
    :meth:`payload` / :meth:`solve` / :meth:`fan_out` / :meth:`row`.
    """

    #: Registry key; also the ``--solver`` CLI value.
    name: str = ""
    #: Instance parameters the solution set consumes (digest coverage).
    digest_fields: frozenset[str] = frozenset()
    #: Expected ``record["schema"]``; mismatching cache records are
    #: discarded and re-solved (see :func:`repro.batch.solve_batch`).
    record_schema: int = 1
    #: Column headers for the CLI result table (matched by :meth:`row`).
    columns: tuple[str, ...] = ()
    #: Digest solver-name override: policies whose records are identical
    #: (e.g. min_power / power_frontier both cache the full frontier)
    #: share cache entries by declaring the same digest name.
    digest_name: str | None = None

    @property
    def needs_power(self) -> bool:
        """Whether instances must carry a :class:`PowerModel`."""
        return "power" in self.digest_fields

    # -- digest ---------------------------------------------------------
    def check_instance(self, instance: BatchInstance, index: int) -> None:
        """Reject instances this policy cannot serve (executor hook)."""
        if self.needs_power and instance.power_model is None:
            raise ConfigurationError(
                f"solver policy {self.name!r} needs a power model but batch "
                f"instance #{index} has none"
            )

    def instance_key(self, instance: BatchInstance) -> tuple[Canonical, str]:
        """Canonical form + digest covering only what this policy consumes."""
        canonical = (
            canonicalize(instance.tree, instance.pre_modes())
            if "preexisting" in self.digest_fields
            else canonicalize(instance.tree)
        )
        return canonical, self.digest(canonical, instance)

    def digest(self, canonical: Canonical, instance: BatchInstance) -> str:
        """Content digest derived from :attr:`digest_fields`."""
        return instance_digest(
            canonical,
            instance.capacity if "capacity" in self.digest_fields else None,
            instance.cost_model if "cost_model" in self.digest_fields else None,
            self.digest_name or self.name,
            power_model=instance.power_model if self.needs_power else None,
            modal_cost_model=(
                instance.effective_modal_cost() if self.needs_power else None
            ),
            include_pre_modes=(
                self.needs_power and "preexisting" in self.digest_fields
            ),
        )

    # -- solve ----------------------------------------------------------
    def payload(
        self, canonical: Canonical, instance: BatchInstance
    ) -> dict[str, Any]:
        """Picklable/pure-data description of one canonical solve."""
        raise NotImplementedError

    def solve(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Solve one canonical payload into a JSON-able cache record.

        Runs inside worker processes; must not touch shared state.
        """
        raise NotImplementedError

    # -- fan-out --------------------------------------------------------
    def fan_out(
        self,
        instance: BatchInstance,
        canonical: Canonical,
        record: dict[str, Any],
        digest: str,
    ) -> Any:
        """Map a record through the inverse relabelling, re-verified."""
        raise NotImplementedError

    def row(self, result: Any) -> tuple[Any, ...]:
        """CLI table row for one fanned-out result (see :attr:`columns`)."""
        raise NotImplementedError

    def result_to_wire(self, result: Any) -> dict[str, Any]:
        """JSON-able wire form of one fanned-out result.

        The serving tier (:mod:`repro.serve`) ships this dict to remote
        clients.  It must be deterministic for a given result — sorted
        collections, no volatile fields — so responses for coalesced
        duplicates byte-match a direct :func:`~repro.batch.solve_batch`
        answer serialised the same way.
        """
        raise NotImplementedError


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, SolverPolicy] = {}


def register_policy(
    policy: SolverPolicy, *, replace_existing: bool = False
) -> SolverPolicy:
    """Add a policy to the registry (returns it, decorator-friendly)."""
    if not policy.name:
        raise ConfigurationError("solver policy needs a non-empty name")
    unknown = policy.digest_fields - _DIGEST_FIELD_NAMES
    if unknown:
        raise ConfigurationError(
            f"solver policy {policy.name!r} declares unknown digest fields "
            f"{sorted(unknown)}; expected a subset of "
            f"{sorted(_DIGEST_FIELD_NAMES)}"
        )
    if policy.name in _REGISTRY and not replace_existing:
        raise ConfigurationError(
            f"solver policy {policy.name!r} is already registered "
            "(pass replace_existing=True to override)"
        )
    _REGISTRY[policy.name] = policy
    return policy


def get_policy(name: str) -> SolverPolicy:
    """Look up a policy by name; raises with the available names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown solver policy {name!r}; expected one of "
            f"{available_solvers()}"
        ) from None


def available_solvers() -> tuple[str, ...]:
    """Registered policy names in registration order."""
    return tuple(_REGISTRY)


# ---------------------------------------------------------------------------
# MinCost policies (Equation 2)
# ---------------------------------------------------------------------------


class _MinCostPolicy(SolverPolicy):
    """Shared payload/record/fan-out shape of the MinCost family.

    Records hold only the canonical replica set; loads, the reuse
    partition and the Equation-2 cost are recomputed per instance during
    fan-out, which also re-verifies validity on the *original* tree.
    """

    record_schema = 1
    columns = ("R", "reused", "created", "deleted", "cost")

    def payload(
        self, canonical: Canonical, instance: BatchInstance
    ) -> dict[str, Any]:
        return {
            "solver": self.name,
            "parents": list(canonical.parents),
            "clients": [list(c) for c in canonical.clients],
            "pre": list(canonical.preexisting),
            "capacity": instance.capacity,
            "create": instance.cost_model.create,
            "delete": instance.cost_model.delete,
        }

    def solve(self, payload: dict[str, Any]) -> dict[str, Any]:
        tree = Tree(
            [None if p is None else int(p) for p in payload["parents"]],
            [(int(n), int(r)) for n, r in payload["clients"]],
            validate=False,
        )
        result = self._solve_tree(tree, payload)
        return {"schema": self.record_schema, "replicas": sorted(result.replicas)}

    def _solve_tree(self, tree: Tree, payload: dict[str, Any]) -> PlacementResult:
        raise NotImplementedError

    def fan_out(
        self,
        instance: BatchInstance,
        canonical: Canonical,
        record: dict[str, Any],
        digest: str,
    ) -> PlacementResult:
        replicas = canonical.map_back(record["replicas"])
        cost = instance.cost_model.of_placement(replicas, instance.preexisting)
        return PlacementResult.from_replicas(
            instance.tree,
            replicas,
            instance.capacity,
            instance.preexisting,
            cost=cost,
            extra={"digest": digest},
        )

    def row(self, result: PlacementResult) -> tuple[Any, ...]:
        return (
            result.n_replicas,
            result.n_reused,
            result.n_created,
            result.n_deleted,
            f"{result.cost:.3f}",
        )

    def result_to_wire(self, result: PlacementResult) -> dict[str, Any]:
        return {
            "replicas": sorted(int(v) for v in result.replicas),
            "cost": result.cost,
            "reused": result.n_reused,
            "created": result.n_created,
            "deleted": result.n_deleted,
        }


class DpPolicy(_MinCostPolicy):
    """MinCost-WithPre (the paper's Theorem 1 dynamic program)."""

    name = "dp"
    digest_fields = frozenset({"capacity", "preexisting", "cost_model"})

    def _solve_tree(self, tree: Tree, payload: dict[str, Any]) -> PlacementResult:
        return replica_update(
            tree,
            int(payload["capacity"]),
            frozenset(int(v) for v in payload["pre"]),
            UniformCostModel(payload["create"], payload["delete"]),
        )


class GreedyPolicy(_MinCostPolicy):
    """The GR baseline.  Index tie-break: the replica set ignores the
    pre-existing set and the cost model, so they stay out of the digest
    (fan-out still prices per instance)."""

    name = "greedy"
    digest_fields = frozenset({"capacity"})

    def _solve_tree(self, tree: Tree, payload: dict[str, Any]) -> PlacementResult:
        return greedy_placement(tree, int(payload["capacity"]))


class DpNoPrePolicy(_MinCostPolicy):
    """Pre-existing-oblivious MinCost (same digest sharing as greedy)."""

    name = "dp_nopre"
    digest_fields = frozenset({"capacity"})

    def _solve_tree(self, tree: Tree, payload: dict[str, Any]) -> PlacementResult:
        return dp_nopre_placement(tree, int(payload["capacity"]))


# ---------------------------------------------------------------------------
# Power policies (Equations 3 + 4, §4/§5.2)
# ---------------------------------------------------------------------------


def _map_modes(
    modes: Any, canonical: Canonical
) -> dict[int, int]:
    """Record ``[[canonical node, mode], ...]`` → original-id placement."""
    return {int(canonical.from_canonical[int(v)]): int(m) for v, m in modes}


def _wire_modes(server_modes: Any) -> list[list[int]]:
    """Deterministic ``[[node, mode], ...]`` wire form of a placement."""
    return [[int(v), int(m)] for v, m in sorted(server_modes.items())]


class _PowerPolicy(SolverPolicy):
    """Shared payload shape of the power family.

    Frontier/candidate records store relabelling-covariant ``(cost,
    power, canonical placement modes)`` triples; cost and power are
    relabelling-*invariant*, so the fanned-out values equal a direct
    per-instance solve and fan-out re-verifies them to 1e-6.
    """

    record_schema = 1
    digest_fields = frozenset({"preexisting", "power"})

    def payload(
        self, canonical: Canonical, instance: BatchInstance
    ) -> dict[str, Any]:
        assert instance.power_model is not None
        return {
            "solver": self.name,
            "parents": list(canonical.parents),
            "clients": [list(c) for c in canonical.clients],
            "pre_modes": [list(p) for p in canonical.preexisting_modes],
            "power": power_model_to_dict(instance.power_model),
            "modal_cost": modal_cost_model_to_dict(
                instance.effective_modal_cost()
            ),
        }

    @staticmethod
    def _payload_instance(payload: dict[str, Any]) -> BatchInstance:
        tree = Tree(
            [None if p is None else int(p) for p in payload["parents"]],
            [(int(n), int(r)) for n, r in payload["clients"]],
            validate=False,
        )
        pre_modes = {int(v): int(m) for v, m in payload["pre_modes"]}
        pm = power_model_from_dict(payload["power"])
        mcm = modal_cost_model_from_dict(payload["modal_cost"])
        return tree, pre_modes, pm, mcm


class _FrontierPolicy(_PowerPolicy):
    """Base for policies backed by the exact cost/power frontier.

    Both subclasses cache the *full* frontier under one shared digest
    name, so a ``power_frontier`` batch warms the cache for later
    ``min_power`` traffic and vice versa.  The Pareto-DP engine is
    selected by the ``kernel`` knob (:mod:`repro.power.kernels`):
    resolution happens here in the *parent* process so the
    ``REPRO_POWER_KERNEL`` override is spawn-safe, and the resolved name
    rides in the payload to the workers.  Kernels produce byte-identical
    ``(cost, power)`` frontiers (witness placements may differ at
    equal-optimum ties; both re-verify), so the digest deliberately
    excludes the kernel — a cache record warmed by one kernel serves
    requests for the other.
    """

    digest_name = "power_frontier"

    #: Kernel override for this policy instance (``None`` = env/default).
    kernel: str | None = None

    def payload(
        self, canonical: Canonical, instance: BatchInstance
    ) -> dict[str, Any]:
        data = super().payload(canonical, instance)
        data["kernel"] = resolve_kernel(self.kernel)
        return data

    def solve(self, payload: dict[str, Any]) -> dict[str, Any]:
        tree, pre_modes, pm, mcm = self._payload_instance(payload)
        solver = KERNELS[payload.get("kernel", DEFAULT_KERNEL)]
        stats = ParetoDPStats()
        frontier = solver(tree, pm, mcm, pre_modes, stats=stats)
        # Kernel counters ride along in the record (deterministic for a
        # canonical instance, so records stay byte-stable): the batch CLI
        # (--stats) and the serving tier's ``perf`` op aggregate them
        # without re-running solves.
        return {
            "schema": self.record_schema,
            "points": frontier.to_records(),
            "dp_stats": stats.as_dict(),
        }

    def _rebuild_frontier(
        self,
        instance: BatchInstance,
        canonical: Canonical,
        record: dict[str, Any],
        digest: str,
        *,
        verify: bool,
    ) -> PowerFrontier:
        assert instance.power_model is not None
        mapped = [
            {
                "cost": pt["cost"],
                "power": pt["power"],
                "modes": [
                    [v, m]
                    for v, m in sorted(_map_modes(pt["modes"], canonical).items())
                ],
            }
            for pt in record["points"]
        ]
        return PowerFrontier.from_records(
            instance.tree,
            mapped,
            instance.power_model,
            instance.effective_modal_cost(),
            instance.pre_modes(),
            extra={"digest": digest},
            verify=verify,
        )


class MinPowerPolicy(_FrontierPolicy):
    """MinPower (§2.3): the minimal-power end of the frontier."""

    name = "min_power"
    columns = ("R", "power", "cost", "modes")

    def fan_out(
        self,
        instance: BatchInstance,
        canonical: Canonical,
        record: dict[str, Any],
        digest: str,
    ) -> ModalPlacementResult:
        frontier = self._rebuild_frontier(
            instance, canonical, record, digest, verify=False
        )
        # min_power() materialises the last point, which re-verifies the
        # placement against the original tree and its pricing.
        result = frontier.min_power()
        return replace(result, extra={**result.extra, "digest": digest})

    def row(self, result: ModalPlacementResult) -> tuple[Any, ...]:
        by_mode: dict[int, int] = {}
        for m in result.server_modes.values():
            by_mode[m] = by_mode.get(m, 0) + 1
        modes = "+".join(f"{by_mode[m]}xW{m + 1}" for m in sorted(by_mode))
        return (
            result.n_replicas,
            f"{result.power:.3f}",
            f"{result.cost:.3f}",
            modes,
        )

    def result_to_wire(self, result: ModalPlacementResult) -> dict[str, Any]:
        return {
            "power": result.power,
            "cost": result.cost,
            "modes": _wire_modes(result.server_modes),
        }


class PowerFrontierPolicy(_FrontierPolicy):
    """The full cost/power Pareto frontier (Experiment 3's engine)."""

    name = "power_frontier"
    columns = ("points", "min_cost", "min_power")

    def fan_out(
        self,
        instance: BatchInstance,
        canonical: Canonical,
        record: dict[str, Any],
        digest: str,
    ) -> PowerFrontier:
        # verify=True materialises every point: each placement is
        # re-verified and re-priced on the original tree.
        return self._rebuild_frontier(
            instance, canonical, record, digest, verify=True
        )

    def row(self, frontier: PowerFrontier) -> tuple[Any, ...]:
        return (
            len(frontier),
            f"{frontier.min_cost():.3f}",
            f"{frontier.points[-1].power:.3f}",
        )

    def result_to_wire(self, frontier: PowerFrontier) -> dict[str, Any]:
        return {"points": frontier.to_records()}


class GreedyPowerPolicy(_PowerPolicy):
    """The §5.2 GR capacity sweep, power-priced.

    The sweep runs on the canonical tree (the greedy's index tie-break
    makes the exact replica sets labelling-dependent, as with the
    ``greedy`` MinCost policy), so all relabelled duplicates receive one
    consistent candidate set.
    """

    name = "greedy_power"
    columns = ("cands", "best_power", "best_cost")

    def solve(self, payload: dict[str, Any]) -> dict[str, Any]:
        tree, pre_modes, pm, mcm = self._payload_instance(payload)
        candidates = greedy_power_candidates(tree, pm, mcm, pre_modes)
        points = []
        for cand in candidates.candidates:
            points.append(
                {
                    "cost": cand.cost,
                    "power": cand.power,
                    "modes": [
                        [int(v), int(m)]
                        for v, m in sorted(cand.server_modes.items())
                    ],
                    "sweep_w": cand.extra.get("sweep_capacity"),
                }
            )
        return {"schema": self.record_schema, "points": points}

    def fan_out(
        self,
        instance: BatchInstance,
        canonical: Canonical,
        record: dict[str, Any],
        digest: str,
    ) -> GreedyPowerCandidates:
        assert instance.power_model is not None
        mcm = instance.effective_modal_cost()
        pre = instance.pre_modes()
        results = []
        for pt in record["points"]:
            modes = _map_modes(pt["modes"], canonical)
            result = modal_from_replicas(
                instance.tree,
                modes.keys(),
                instance.power_model,
                mcm,
                pre,
                extra={"sweep_capacity": pt.get("sweep_w"), "digest": digest},
            )
            if (
                abs(result.cost - pt["cost"]) > _PRICE_EPS
                or abs(result.power - pt["power"]) > _PRICE_EPS
            ):
                raise SolverError(
                    f"fanned-out candidate prices (cost={result.cost}, "
                    f"power={result.power}) differ from the cached record "
                    f"({pt['cost']}, {pt['power']})"
                )
            if result.server_modes != modes:
                raise SolverError(
                    "load-determined modes of the fanned-out candidate "
                    "differ from the modes recorded during the sweep"
                )
            results.append(result)
        return GreedyPowerCandidates(
            candidates=tuple(results), extra={"digest": digest}
        )

    def row(self, result: GreedyPowerCandidates) -> tuple[Any, ...]:
        best = result.min_power()
        if best is None:
            return (0, "-", "-")
        return (
            len(result.candidates),
            f"{best.power:.3f}",
            f"{best.cost:.3f}",
        )

    def result_to_wire(self, result: GreedyPowerCandidates) -> dict[str, Any]:
        return {
            "candidates": [
                {
                    "cost": cand.cost,
                    "power": cand.power,
                    "modes": _wire_modes(cand.server_modes),
                    "sweep_w": cand.extra.get("sweep_capacity"),
                }
                for cand in result.candidates
            ]
        }


for _policy in (
    DpPolicy(),
    GreedyPolicy(),
    DpNoPrePolicy(),
    MinPowerPolicy(),
    PowerFrontierPolicy(),
    GreedyPowerPolicy(),
):
    register_policy(_policy)
