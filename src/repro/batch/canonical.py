"""Canonical forms and content-addressed digests for solver instances.

Replica-placement traffic is dominated by *structurally identical* requests:
the same tree shape solved against many request vectors, or the same
instance resubmitted under a different node labelling (the paper's
experiment campaigns themselves re-solve a handful of tree families
thousands of times).  To dedupe such traffic the batch layer needs a
canonical form that is invariant under relabelling of internal nodes.

The canonicalisation is the classical AHU rooted-tree encoding extended
with per-node annotations, with subtree codes *interned to integers*:

* each node's annotation is the sorted multiset of its direct client
  request counts plus a pre-existing-server marker (``0`` for plain
  nodes, ``1 + old_mode`` for pre-existing servers, so an unmoded
  pre-existing set is exactly the all-modes-0 case);
* nodes are processed level by level (by subtree height, leaves first);
  a node's key is ``(annotation, sorted child codes)`` and every *new*
  key in a level is assigned the next integer code in sorted key order.
  Because identical keys can only occur at one height, and the sorted
  assignment within a level is label-free, two isomorphic annotated
  trees receive identical code tables — by induction over heights;
* the canonical node numbering is the pre-order walk that visits
  children in ascending code order.

Interning keeps the encoding near-linear: the original string encoding
concatenated child codes, which is O(N²) characters on path-shaped trees
(``benchmarks/bench_canonical_deep.py`` guards the regression).

Two instances receive the same digest **iff** there is a tree isomorphism
mapping one onto the other that preserves client workloads and the
pre-existing set (including old modes, when given as a mapping) — so a
cached solution for one can be relabelled into a solution for the other
via :attr:`Canonical.from_canonical`.

The digest additionally covers the solver parameters a policy's solution
set actually consumes — capacity, cost model, power model, modal cost
model — as declared by the policy (:mod:`repro.batch.registry`), so
distinct questions about the same tree never collide while equivalent
questions share one record.
"""

from __future__ import annotations

import hashlib
import json
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from collections.abc import Iterable, Mapping, Sequence
from typing import TYPE_CHECKING

from repro.core.costs import UniformCostModel
from repro.tree.model import Tree
from repro.tree.validate import check_preexisting

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.costs import ModalCostModel
    from repro.power.modes import PowerModel

__all__ = [
    "Canonical",
    "SubtreeCodes",
    "cached_subtree_codes",
    "canonicalize",
    "instance_digest",
    "labelled_subtree_codes",
    "relabel_tree",
]

#: Bumped to 2 when AHU codes switched from strings to interned integers
#: (the child ordering, hence the canonical numbering, changed) and the
#: digest grew optional power-model fields.  Old records can never be
#: returned: they are keyed by old-schema digests no new request computes.
_DIGEST_SCHEMA = 2


@dataclass(frozen=True)
class Canonical:
    """Canonical form of a ``(tree, pre-existing)`` pair.

    Attributes
    ----------
    parents:
        Canonical parent vector; entry 0 is the root and every parent id
        is smaller than its child's (pre-order property).
    clients:
        Sorted ``(canonical node, requests)`` pairs.
    preexisting:
        Sorted canonical ids of the pre-existing servers.
    preexisting_modes:
        Sorted ``(canonical node, old mode)`` pairs; mode 0 for every
        server when the pre-existing set was given as a plain iterable.
    to_canonical:
        ``to_canonical[original_id] == canonical_id``.
    from_canonical:
        Inverse permutation of :attr:`to_canonical`.
    """

    parents: tuple[int | None, ...]
    clients: tuple[tuple[int, int], ...]
    preexisting: tuple[int, ...]
    preexisting_modes: tuple[tuple[int, int], ...]
    to_canonical: tuple[int, ...]
    from_canonical: tuple[int, ...]

    def map_back(self, canonical_nodes: Iterable[int]) -> frozenset[int]:
        """Translate canonical node ids into the instance's original ids."""
        return frozenset(self.from_canonical[v] for v in canonical_nodes)


def _normalize_preexisting(
    preexisting: Iterable[int] | Mapping[int, int],
) -> dict[int, int]:
    """Coerce either pre-existing shape to the ``{node: old_mode}`` form."""
    return (
        {int(v): int(m) for v, m in preexisting.items()}
        if isinstance(preexisting, Mapping)
        else {int(v): 0 for v in preexisting}
    )


def canonicalize(
    tree: Tree, preexisting: Iterable[int] | Mapping[int, int] = ()
) -> Canonical:
    """Compute the relabelling-invariant canonical form of an instance.

    ``preexisting`` is either a plain iterable of node ids (the MinCost
    shape) or a ``{node: old_mode}`` mapping (the power shape); a plain
    set canonicalises exactly like the all-modes-0 mapping.
    """
    pre_modes = _normalize_preexisting(preexisting)
    check_preexisting(tree, pre_modes)
    n = tree.n_nodes

    # Group nodes by subtree height so codes can be interned level by
    # level: identical keys only ever occur at one height, and assigning
    # fresh integers in sorted-key order per level is labelling-free.
    heights = [0] * n
    by_height: list[list[int]] = []
    for v in tree.post_order():
        vi = int(v)
        kids = tree.children(vi)
        h = 1 + max((heights[c] for c in kids), default=-1)
        heights[vi] = h
        while len(by_height) <= h:
            by_height.append([])
        by_height[h].append(vi)

    codes = [0] * n
    intern: dict[tuple, int] = {}
    for level in by_height:
        level_keys: dict[int, tuple] = {}
        for vi in level:
            reqs = tuple(sorted(c.requests for c in tree.clients_at(vi)))
            marker = pre_modes.get(vi, -1) + 1
            kids = tuple(sorted(codes[c] for c in tree.children(vi)))
            level_keys[vi] = (reqs, marker, kids)
        for key in sorted(set(level_keys.values())):
            if key not in intern:
                intern[key] = len(intern)
        for vi in level:
            codes[vi] = intern[level_keys[vi]]

    # Canonical numbering: pre-order, children in ascending code order.
    # Identically coded siblings root isomorphic annotated subtrees, so
    # any order between them yields the same canonical instance.
    order: list[int] = []
    stack = [tree.root]
    while stack:
        v = stack.pop()
        order.append(v)
        stack.extend(
            sorted(tree.children(v), key=codes.__getitem__, reverse=True)
        )

    to_canon = [0] * n
    for canon_id, orig in enumerate(order):
        to_canon[orig] = canon_id
    parents: list[int | None] = [None] * n
    for canon_id, orig in enumerate(order):
        p = tree.parent(orig)
        parents[canon_id] = None if p is None else to_canon[p]

    clients = tuple(
        sorted((to_canon[c.node], c.requests) for c in tree.clients)
    )
    canon_modes = tuple(
        sorted((to_canon[v], m) for v, m in pre_modes.items())
    )
    return Canonical(
        parents=tuple(parents),
        clients=clients,
        preexisting=tuple(v for v, _ in canon_modes),
        preexisting_modes=canon_modes,
        to_canonical=tuple(to_canon),
        from_canonical=tuple(order),
    )


@dataclass(frozen=True)
class SubtreeCodes:
    """Per-node labelled AHU subtree codes of one tree.

    Produced by :func:`labelled_subtree_codes`.  Both attributes are
    intern ids: equal values identify isomorphic annotated subtrees
    *within the call that produced them* (ids are assigned in discovery
    order, so they are not comparable across calls or trees — use
    :func:`canonicalize` / :func:`instance_digest` for cross-instance
    identity).

    Attributes
    ----------
    codes:
        ``codes[v]`` interns ``(client load sum at v, pre-marker of v,
        sorted child codes)`` — the full labelled code of ``subtree_v``.
    table_keys:
        ``table_keys[v]`` interns ``(client load sum at v, sorted child
        codes)`` — the code of ``v``'s marker-0 twin, i.e. the same code
        with the node's *own* pre-marker excluded.  This is the
        power-DP *table signature*: the per-flow
        label table of ``subtree_v`` (:mod:`repro.power.dp_power_pareto`)
        depends on every load and pre-existing mode strictly inside the
        subtree and on ``v``'s own load, but not on whether ``v`` itself
        is pre-existing (placement on ``v`` is decided at its parent), so
        equal ``table_keys`` means the computed tables are equal and can
        be shared within one solve.
    """

    codes: tuple[int, ...]
    table_keys: tuple[int, ...]


def labelled_subtree_codes(
    tree: Tree,
    preexisting: Iterable[int] | Mapping[int, int] = (),
    *,
    intern: dict[tuple, int] | None = None,
) -> SubtreeCodes:
    """Intern the labelled AHU code of every node's subtree.

    The annotation per node is its aggregated direct client load plus
    the pre-existing-server marker (``0`` plain, ``1 + old_mode`` for
    pre-existing servers) — the same marker convention as
    :func:`canonicalize`, but with the client request *sum* instead of
    the multiset: the dynamic programs only ever consume the per-node
    aggregate, so subtrees whose workloads differ only in how one load
    splits across clients still share a code (strictly more sharing
    than the instance-level canonical form allows).

    Interning keeps this near-linear like :func:`canonicalize`: a
    node's key embeds its children's *codes* (not their expansions), so
    identical keys are discovered with one dictionary lookup.  Unlike
    :func:`canonicalize` no level-by-level ordering is needed — equal
    keys imply equal heights by construction, and within-tree equality
    is all the intern ids promise.

    ``intern`` optionally supplies a caller-owned intern table.  Ids
    then stay comparable across *every call sharing that table* — the
    contract the live-session front store
    (:mod:`repro.power.frontstore`) relies on to match subtree tables
    across deltas.  Without it a fresh table is used per call and ids
    are only comparable within that call.
    """
    pre_modes = _normalize_preexisting(preexisting)
    check_preexisting(tree, pre_modes)
    n = tree.n_nodes
    codes = [0] * n
    keys = [0] * n
    if intern is None:
        intern = {}
    loads = tree.client_loads.tolist()
    children = tree.children
    # A node's table_key is the code its marker-0 twin would carry, so one
    # intern table serves both: for plain nodes code == table_key (one
    # lookup), for pre-existing nodes the twin key is interned separately
    # (a twin id never being a real node's code is harmless — only id
    # equality is promised).
    for vi in tree.post_order().tolist():
        kids_nodes = children(vi)
        kids = tuple(sorted(codes[c] for c in kids_nodes)) if kids_nodes else ()
        load = loads[vi]
        marker = pre_modes.get(vi, -1) + 1
        full_key = (load, marker, kids)
        c = intern.get(full_key)
        if c is None:
            c = intern[full_key] = len(intern)
        codes[vi] = c
        if marker:
            twin_key = (load, 0, kids)
            k = intern.get(twin_key)
            if k is None:
                k = intern[twin_key] = len(intern)
            keys[vi] = k
        else:
            keys[vi] = c
    return SubtreeCodes(codes=tuple(codes), table_keys=tuple(keys))


#: Capacity of the per-process :func:`cached_subtree_codes` memo.  Live
#: sessions and bound sweeps hammer a handful of trees; 128 retained
#: relabellings covers every realistic working set while keeping the
#: worst case (128 full code tuples) a few MiB.
_CODES_MEMO_CAP = 128

_codes_memo: OrderedDict[
    tuple[int, tuple[tuple[int, int], ...]],
    tuple["weakref.ref[Tree]", SubtreeCodes],
] = OrderedDict()
_codes_memo_lock = threading.Lock()


def cached_subtree_codes(
    tree: Tree, preexisting: Iterable[int] | Mapping[int, int] = ()
) -> SubtreeCodes:
    """Memoized :func:`labelled_subtree_codes` for repeated solves.

    Both Pareto-DP kernels relabel the whole tree on *every* solve; on
    the serving hot paths (bound sweeps, live sessions, cache-warm
    batches) the same ``(tree, pre)`` pair recurs many times, so the
    O(N log N) relabelling is pure overhead after the first call.  The
    memo is keyed by tree *identity* plus the sorted pre-mode items and
    holds a weak reference to the tree: an entry only answers while the
    keyed object is still alive (``id`` reuse after garbage collection
    cannot alias a different tree), and the LRU cap bounds the memo on
    long-lived processes.  Thread-safe — solves run on executor threads.
    """
    pre_modes = _normalize_preexisting(preexisting)
    key = (id(tree), tuple(sorted(pre_modes.items())))
    with _codes_memo_lock:
        hit = _codes_memo.get(key)
        if hit is not None and hit[0]() is tree:
            _codes_memo.move_to_end(key)
            return hit[1]
    sub = labelled_subtree_codes(tree, pre_modes)
    with _codes_memo_lock:
        _codes_memo[key] = (weakref.ref(tree), sub)
        _codes_memo.move_to_end(key)
        while len(_codes_memo) > _CODES_MEMO_CAP:
            _codes_memo.popitem(last=False)
    return sub


def instance_digest(
    canonical: Canonical,
    capacity: int | None,
    cost_model: UniformCostModel | None,
    solver: str,
    *,
    power_model: PowerModel | None = None,
    modal_cost_model: ModalCostModel | None = None,
    include_pre_modes: bool = False,
) -> str:
    """Content-addressed SHA-256 digest of a canonical solver instance.

    Only the parameters a solver policy's *solution set* consumes belong
    in its digest (:attr:`repro.batch.registry.SolverPolicy.digest_fields`
    makes that call per policy): pass ``cost_model=None`` for policies
    that price solutions only during fan-out (greedy, dp_nopre), and
    ``capacity=None`` for power policies, whose capacity comes from the
    mode set.  ``include_pre_modes`` additionally covers the pre-existing
    servers' old modes (the power shape of the pre-existing set).
    """
    payload: dict = {
        "schema": _DIGEST_SCHEMA,
        "solver": solver,
        "capacity": None if capacity is None else int(capacity),
        "create": None if cost_model is None else cost_model.create,
        "delete": None if cost_model is None else cost_model.delete,
        "parents": list(canonical.parents),
        "clients": [list(c) for c in canonical.clients],
        "pre": list(canonical.preexisting),
    }
    if power_model is not None or modal_cost_model is not None:
        from repro.power.serialize import (
            modal_cost_model_to_dict,
            power_model_to_dict,
        )

        if power_model is not None:
            payload["power"] = power_model_to_dict(power_model)
        if modal_cost_model is not None:
            payload["modal_cost"] = modal_cost_model_to_dict(modal_cost_model)
    if include_pre_modes:
        payload["pre_modes"] = [list(p) for p in canonical.preexisting_modes]
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def relabel_tree(
    tree: Tree,
    perm: Sequence[int],
    preexisting: Iterable[int] | Mapping[int, int] = (),
) -> tuple[Tree, frozenset[int]] | tuple[Tree, dict[int, int]]:
    """Apply a node permutation (``perm[old] == new``) to an instance.

    Returns the relabelled tree and pre-existing set — an isomorphic copy
    that must canonicalise to the same digest.  A ``{node: mode}``
    pre-existing mapping is relabelled to a mapping; a plain iterable to
    a frozenset.  Used by the batch tests and the duplicate-heavy
    benchmark workloads.
    """
    n = tree.n_nodes
    if sorted(int(p) for p in perm) != list(range(n)):
        raise ValueError(f"perm must be a permutation of 0..{n - 1}")
    parents: list[int | None] = [None] * n
    for old, p in enumerate(tree.parents):
        parents[int(perm[old])] = None if p is None else int(perm[p])
    clients = [(int(perm[c.node]), c.requests) for c in tree.clients]
    relabelled = Tree(parents, clients, validate=False)
    if isinstance(preexisting, Mapping):
        return relabelled, {int(perm[v]): int(m) for v, m in preexisting.items()}
    return relabelled, frozenset(int(perm[v]) for v in preexisting)
