"""Canonical forms and content-addressed digests for solver instances.

Replica-placement traffic is dominated by *structurally identical* requests:
the same tree shape solved against many request vectors, or the same
instance resubmitted under a different node labelling (the paper's
experiment campaigns themselves re-solve a handful of tree families
thousands of times).  To dedupe such traffic the batch layer needs a
canonical form that is invariant under relabelling of internal nodes.

The canonicalisation is the classical AHU rooted-tree encoding extended
with per-node annotations:

* each node's annotation is the sorted multiset of its direct client
  request counts plus a pre-existing-server marker;
* a node's code is ``"(" + annotation + sorted(child codes) + ")"``;
* the canonical node numbering is the pre-order walk that visits children
  in ascending code order.

Two instances receive the same digest **iff** there is a tree isomorphism
mapping one onto the other that preserves client workloads and the
pre-existing set — so a cached solution for one can be relabelled into a
solution for the other via :attr:`Canonical.from_canonical`.

The digest additionally covers the solver parameters (capacity, cost
model, solver policy) so distinct questions about the same tree never
collide.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.costs import UniformCostModel
from repro.tree.model import Tree
from repro.tree.validate import check_preexisting

__all__ = [
    "Canonical",
    "canonicalize",
    "instance_digest",
    "relabel_tree",
]

_DIGEST_SCHEMA = 1


@dataclass(frozen=True)
class Canonical:
    """Canonical form of a ``(tree, pre-existing)`` pair.

    Attributes
    ----------
    parents:
        Canonical parent vector; entry 0 is the root and every parent id
        is smaller than its child's (pre-order property).
    clients:
        Sorted ``(canonical node, requests)`` pairs.
    preexisting:
        Sorted canonical ids of the pre-existing servers.
    to_canonical:
        ``to_canonical[original_id] == canonical_id``.
    from_canonical:
        Inverse permutation of :attr:`to_canonical`.
    """

    parents: tuple[int | None, ...]
    clients: tuple[tuple[int, int], ...]
    preexisting: tuple[int, ...]
    to_canonical: tuple[int, ...]
    from_canonical: tuple[int, ...]

    def map_back(self, canonical_nodes: Iterable[int]) -> frozenset[int]:
        """Translate canonical node ids into the instance's original ids."""
        return frozenset(self.from_canonical[v] for v in canonical_nodes)


def canonicalize(tree: Tree, preexisting: Iterable[int] = ()) -> Canonical:
    """Compute the relabelling-invariant canonical form of an instance."""
    pre = check_preexisting(tree, preexisting)
    n = tree.n_nodes

    # AHU codes, children before parents.  Codes are strings; identically
    # coded siblings root isomorphic annotated subtrees, so any order
    # between them yields the same canonical instance.
    codes: list[str] = [""] * n
    for v in tree.post_order():
        vi = int(v)
        reqs = ",".join(
            str(r) for r in sorted(c.requests for c in tree.clients_at(vi))
        )
        kids = "".join(sorted(codes[c] for c in tree.children(vi)))
        codes[vi] = f"({reqs}|{1 if vi in pre else 0}{kids})"

    # Canonical numbering: pre-order, children in ascending code order.
    order: list[int] = []
    stack = [tree.root]
    while stack:
        v = stack.pop()
        order.append(v)
        stack.extend(
            sorted(tree.children(v), key=codes.__getitem__, reverse=True)
        )

    to_canon = [0] * n
    for canon_id, orig in enumerate(order):
        to_canon[orig] = canon_id
    parents: list[int | None] = [None] * n
    for canon_id, orig in enumerate(order):
        p = tree.parent(orig)
        parents[canon_id] = None if p is None else to_canon[p]

    clients = tuple(
        sorted((to_canon[c.node], c.requests) for c in tree.clients)
    )
    return Canonical(
        parents=tuple(parents),
        clients=clients,
        preexisting=tuple(sorted(to_canon[v] for v in pre)),
        to_canonical=tuple(to_canon),
        from_canonical=tuple(order),
    )


def instance_digest(
    canonical: Canonical,
    capacity: int,
    cost_model: UniformCostModel | None,
    solver: str,
) -> str:
    """Content-addressed SHA-256 digest of a canonical solver instance.

    Pass ``cost_model=None`` for solver policies whose *solution set* does
    not depend on the cost model (greedy, dp_nopre) so that equivalent
    requests share a digest; the executor makes that call per policy.
    """
    payload = {
        "schema": _DIGEST_SCHEMA,
        "solver": solver,
        "capacity": int(capacity),
        "create": None if cost_model is None else cost_model.create,
        "delete": None if cost_model is None else cost_model.delete,
        "parents": list(canonical.parents),
        "clients": [list(c) for c in canonical.clients],
        "pre": list(canonical.preexisting),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def relabel_tree(
    tree: Tree,
    perm: Sequence[int],
    preexisting: Iterable[int] = (),
) -> tuple[Tree, frozenset[int]]:
    """Apply a node permutation (``perm[old] == new``) to an instance.

    Returns the relabelled tree and pre-existing set — an isomorphic copy
    that must canonicalise to the same digest.  Used by the batch tests
    and the duplicate-heavy benchmark workloads.
    """
    n = tree.n_nodes
    if sorted(int(p) for p in perm) != list(range(n)):
        raise ValueError(f"perm must be a permutation of 0..{n - 1}")
    parents: list[int | None] = [None] * n
    for old, p in enumerate(tree.parents):
        parents[int(perm[old])] = None if p is None else int(perm[p])
    clients = [(int(perm[c.node]), c.requests) for c in tree.clients]
    pre = frozenset(int(perm[v]) for v in preexisting)
    return Tree(parents, clients, validate=False), pre
