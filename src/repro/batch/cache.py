"""Result cache: in-memory LRU with an optional on-disk JSON-lines store.

The cache maps canonical instance digests (:func:`repro.batch.canonical
.instance_digest`) to small JSON-able result records.  Two tiers:

* an :class:`collections.OrderedDict` LRU bounded by ``max_entries``;
* optionally a ``batch-cache.jsonl`` file under ``cache_dir`` that
  persists every stored record across processes.  Each line carries the
  writing package version (:data:`repro._version.__version__`); entries
  written by a different version are dropped at load time (solver output
  or canonical schema may have changed) and the file is compacted.

The disk tier is append-only and unbounded — sharding and an eviction /
compaction policy for long-lived deployments are tracked as ROADMAP open
items.  Records must be plain JSON-able dicts; the cache never pickles.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from pathlib import Path
from typing import Any

from repro._version import __version__
from repro.exceptions import ConfigurationError
from repro.perf.stats import BatchCacheStats

__all__ = ["ResultCache"]

_CACHE_FILENAME = "batch-cache.jsonl"


class ResultCache:
    """Two-tier digest → record cache with hit/miss instrumentation.

    Parameters
    ----------
    max_entries:
        LRU capacity; least-recently-used records are evicted first.
        Evicted records remain retrievable from the disk tier when one is
        configured.
    cache_dir:
        Directory for the persistent JSONL store (created on demand).
        ``None`` keeps the cache purely in-memory.
    stats:
        Optional shared :class:`~repro.perf.stats.BatchCacheStats`
        collector; a private one is created otherwise.
    """

    def __init__(
        self,
        max_entries: int = 4096,
        *,
        cache_dir: str | os.PathLike[str] | None = None,
        stats: BatchCacheStats | None = None,
    ) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self.stats = stats if stats is not None else BatchCacheStats()
        self._lru: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._disk: dict[str, dict[str, Any]] = {}
        self._disk_path: Path | None = None
        if cache_dir is not None:
            directory = Path(cache_dir)
            directory.mkdir(parents=True, exist_ok=True)
            self._disk_path = directory / _CACHE_FILENAME
            self._load_disk()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, digest: str) -> bool:
        return digest in self._lru or digest in self._disk

    def get(
        self, digest: str, *, stats: BatchCacheStats | None = None
    ) -> dict[str, Any] | None:
        """Look up a record; counts a hit/miss and refreshes LRU order.

        ``stats`` overrides the collector for this lookup — the batch
        executor passes its effective collector so every counter of one
        ``solve_batch`` call lands in a single object.
        """
        stats = stats if stats is not None else self.stats
        record = self._lru.get(digest)
        if record is not None:
            self._lru.move_to_end(digest)
            stats.record_hit()
            return record
        record = self._disk.get(digest)
        if record is not None:
            stats.record_hit(disk=True)
            self._insert(digest, record, stats)
            return record
        stats.record_miss()
        return None

    def put(
        self,
        digest: str,
        record: dict[str, Any],
        *,
        stats: BatchCacheStats | None = None,
    ) -> None:
        """Store a record in the LRU and append it to the disk tier."""
        stats = stats if stats is not None else self.stats
        self._insert(digest, record, stats)
        stats.stores += 1
        if self._disk_path is not None and digest not in self._disk:
            self._disk[digest] = record
            line = json.dumps(
                {"version": __version__, "digest": digest, "record": record},
                separators=(",", ":"),
            )
            with open(self._disk_path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _insert(
        self,
        digest: str,
        record: dict[str, Any],
        stats: BatchCacheStats | None = None,
    ) -> None:
        stats = stats if stats is not None else self.stats
        self._lru[digest] = record
        self._lru.move_to_end(digest)
        while len(self._lru) > self.max_entries:
            self._lru.popitem(last=False)
            stats.evictions += 1

    def _load_disk(self) -> None:
        assert self._disk_path is not None
        if not self._disk_path.exists():
            return
        stale_or_corrupt = False
        with open(self._disk_path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    digest = entry["digest"]
                    record = entry["record"]
                    version = entry["version"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    stale_or_corrupt = True
                    continue
                if version != __version__:
                    stale_or_corrupt = True
                    continue
                self._disk[digest] = record
        if stale_or_corrupt:
            self._compact()

    def _compact(self) -> None:
        """Rewrite the store keeping only current-version entries."""
        assert self._disk_path is not None
        tmp = self._disk_path.with_suffix(".jsonl.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            for digest, record in self._disk.items():
                fh.write(
                    json.dumps(
                        {
                            "version": __version__,
                            "digest": digest,
                            "record": record,
                        },
                        separators=(",", ":"),
                    )
                    + "\n"
                )
        os.replace(tmp, self._disk_path)
