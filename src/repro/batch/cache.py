"""Result cache: in-memory LRU with a sharded, size-bounded disk store.

The cache maps canonical instance digests (:func:`repro.batch.canonical
.instance_digest`) to small JSON-able result records.  Two tiers:

* an :class:`collections.OrderedDict` LRU bounded by ``max_entries``;
* optionally a set of JSON-lines files under ``cache_dir``, sharded by
  the first two hex characters of the digest
  (``batch-cache.<2hex>.jsonl``) so concurrent writers appending
  different digests land on different files instead of contending on one
  append-only log.  Each line carries the writing package version
  (:data:`repro._version.__version__`); entries written by a different
  version are dropped at load time (solver output or canonical schema
  may have changed) and the affected shards are compacted.

With ``max_disk_entries`` set, the disk tier is size-bounded: when a
store pushes it past the budget (plus ~1.5% amortisation slack), the
least-recently-used digests are evicted and only the shards that lost
entries are rewritten in place.  Rewrites re-read the shard first and
carry over current-version lines appended by concurrent writers.
Recency is approximate across restarts (load order seeds it), exact
within a process.  A legacy single-file ``batch-cache.jsonl`` store is
migrated into shards on first load.

Concurrency: every shard append/rewrite/load holds an advisory
per-shard file lock (``flock`` on a ``.lock`` sidecar, so a rewrite's
``os.replace`` cannot orphan a lock held on the replaced inode), which
serialises cross-process writers — two processes appending the same
digest prefix can no longer interleave partial lines or lose appends in
the read→replace window.  Cross-process *duplicates* (both solved the
same digest before seeing each other's line) are still possible by
design; shards whose load reveals duplicated digests are compacted on
the spot.  On platforms without ``fcntl`` the locks degrade to no-ops.
In-process, the cache is thread-safe: one reentrant lock guards both
tiers, so an event loop can serve hits while a worker thread stores
results (the serving frontend, :mod:`repro.serve`, relies on this).

Records must be plain JSON-able dicts; the cache never pickles.  Lookups
may pass an expected record ``schema``: a cached record whose ``schema``
field differs is treated as a miss (and counted in
``stats.schema_discards``), so a policy can never be served a record
shape it does not understand.

Integrity: every line carries a CRC32 of its digest + canonical record
JSON (:func:`_envelope`), verified whenever a store file is parsed.  A
line that fails to parse or fails its CRC is *quarantined* — moved to a
``<shard>.quarantine`` sidecar during the compaction that drops it, and
counted in ``stats.corrupt_lines`` — never silently discarded, so torn
writes and bit rot stay diagnosable.  The fault-injection registry
(:mod:`repro.faults`) may deterministically mangle lines at append time
to exercise exactly this path.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
import zlib
from collections import OrderedDict
from collections.abc import Iterable, Iterator
from contextlib import contextmanager
from pathlib import Path
from typing import Any

try:  # pragma: no cover - always present on POSIX
    import fcntl
except ImportError:  # pragma: no cover - Windows fallback: no-op locks
    fcntl = None  # type: ignore[assignment]

from repro._version import __version__
from repro.exceptions import ConfigurationError
from repro.faults import registry as _faults
from repro.perf.stats import BatchCacheStats

__all__ = ["ResultCache"]

_CACHE_BASENAME = "batch-cache"
#: Pre-sharding store file, migrated into shards at load time.
_LEGACY_FILENAME = "batch-cache.jsonl"

#: Version of the on-disk cache line envelope produced by
#: :func:`_envelope`.  Bump it whenever the envelope shape changes so
#: the schema-drift lint rule can pair the surface with a version.
#: Schema 2 added the ``crc`` integrity field.
CACHE_SCHEMA = 2


def _crc(digest: str, record: Any) -> int:
    """CRC32 over the digest + canonical (sorted-keys) record JSON.

    Key-order independent: verification re-serialises the *parsed*
    record, so it checks content, not byte layout of the stored line.
    """
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(f"{digest}:{payload}".encode())


def _envelope(digest: str, record: dict[str, Any]) -> dict[str, Any]:
    """The JSON object written as one cache line on disk."""
    return {
        "version": __version__,
        "digest": digest,
        "record": record,
        "crc": _crc(digest, record),
    }


#: One-time guard for the missing-``fcntl`` warning: a process spawning
#: many caches (the cluster spawns one per worker) must not repeat it.
_warned_no_flock = False


def _warn_no_flock() -> None:
    """Warn (once per process) that shard locks degraded to no-ops."""
    global _warned_no_flock
    if _warned_no_flock:
        return
    _warned_no_flock = True
    warnings.warn(
        "fcntl is unavailable on this platform: the persistent cache's "
        "advisory per-shard file locks degrade to no-ops, so multiple "
        "processes sharing one cache_dir may interleave or lose appends "
        "(cache stats report locking: \"none\")",
        RuntimeWarning,
        stacklevel=3,
    )


@contextmanager
def _shard_lock(path: Path) -> Iterator[None]:
    """Advisory cross-process lock for one store file.

    Locks a ``<name>.lock`` sidecar rather than the file itself: rewrites
    swap the shard's inode via :func:`os.replace`, and a lock held on the
    old inode would no longer exclude anyone.  The sidecar is tiny and
    permanent; stale sidecars are harmless.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX
        yield
        return
    lock_path = path.parent / (path.name + ".lock")
    with open(lock_path, "a", encoding="utf-8") as fh:
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)


class ResultCache:
    """Two-tier digest → record cache with hit/miss instrumentation.

    Parameters
    ----------
    max_entries:
        LRU capacity; least-recently-used records are evicted first.
        Evicted records remain retrievable from the disk tier when one is
        configured.
    cache_dir:
        Directory for the persistent sharded JSONL store (created on
        demand).  ``None`` keeps the cache purely in-memory.
    max_disk_entries:
        Optional budget for the disk tier; exceeding it evicts the
        least-recently-used digests and compacts their shards in place.
        ``None`` keeps the disk tier unbounded.
    stats:
        Optional shared :class:`~repro.perf.stats.BatchCacheStats`
        collector; a private one is created otherwise.
    """

    def __init__(
        self,
        max_entries: int = 4096,
        *,
        cache_dir: str | os.PathLike[str] | None = None,
        max_disk_entries: int | None = None,
        stats: BatchCacheStats | None = None,
    ) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        if max_disk_entries is not None and max_disk_entries < 1:
            raise ConfigurationError(
                f"max_disk_entries must be >= 1, got {max_disk_entries}"
            )
        self.max_entries = max_entries
        self.max_disk_entries = max_disk_entries
        self.stats = stats if stats is not None else BatchCacheStats()
        self._lru: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._disk: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._dir: Path | None = None
        # One reentrant lock for both tiers: lookups may run on an event
        # loop thread while the serving drain thread stores results.
        self._mutex = threading.RLock()
        if cache_dir is not None:
            self._dir = Path(cache_dir)
            self._dir.mkdir(parents=True, exist_ok=True)
            if fcntl is None:  # pragma: no cover - non-POSIX
                _warn_no_flock()
            with self._mutex:
                self._load_disk()
        self.stats.locking = self.locking

    @property
    def locking(self) -> str:
        """Cross-process locking mode of the disk tier.

        ``"memory"`` — no disk tier configured; ``"flock"`` — advisory
        per-shard sidecar locks are in force; ``"none"`` — ``fcntl`` is
        missing and shard locks are no-ops (shared-directory writers
        risk corruption; a one-time :class:`RuntimeWarning` was issued).
        """
        if self._dir is None:
            return "memory"
        return "flock" if fcntl is not None else "none"

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._mutex:
            return len(self._lru)

    def __contains__(self, digest: str) -> bool:
        with self._mutex:
            return digest in self._lru or digest in self._disk

    def get(
        self,
        digest: str,
        *,
        stats: BatchCacheStats | None = None,
        schema: int | None = None,
    ) -> dict[str, Any] | None:
        """Look up a record; counts a hit/miss and refreshes LRU order.

        ``stats`` overrides the collector for this lookup — the batch
        executor passes its effective collector so every counter of one
        ``solve_batch`` call lands in a single object.  With ``schema``
        set, a record whose ``schema`` field differs is treated as a miss
        (counted in ``schema_discards``) instead of being returned.
        """
        stats = stats if stats is not None else self.stats
        with self._mutex:
            record = self._lru.get(digest)
            if record is not None:
                if schema is not None and record.get("schema") != schema:
                    stats.schema_discards += 1
                    stats.record_miss()
                    return None
                self._lru.move_to_end(digest)
                if digest in self._disk:
                    # Memory-tier hits still count as disk usage, so the
                    # size-bounded disk tier evicts genuinely cold digests.
                    self._disk.move_to_end(digest)
                stats.record_hit()
                return record
            record = self._disk.get(digest)
            if record is not None:
                if schema is not None and record.get("schema") != schema:
                    stats.schema_discards += 1
                    stats.record_miss()
                    return None
                self._disk.move_to_end(digest)
                stats.record_hit(disk=True)
                self._insert(digest, record, stats)
                return record
            stats.record_miss()
            return None

    def put(
        self,
        digest: str,
        record: dict[str, Any],
        *,
        stats: BatchCacheStats | None = None,
    ) -> None:
        """Store a record in the LRU and append it to its disk shard.

        A digest whose on-disk record differs (e.g. a stale-schema entry
        that was bypassed via ``get(..., schema=...)``) is overwritten:
        the new record is appended and wins at load time (later lines
        shadow earlier ones within a shard), so the cache converges
        instead of re-solving the same digest forever.
        """
        stats = stats if stats is not None else self.stats
        line: str | None = None
        with self._mutex:
            self._insert(digest, record, stats)
            stats.stores += 1
            if self._dir is not None and self._disk.get(digest) != record:
                self._disk[digest] = record
                self._disk.move_to_end(digest)
                line = json.dumps(
                    _envelope(digest, record), separators=(",", ":")
                )
                plan = _faults.active_plan()
                if plan is not None:
                    # Chaos hook: deterministically mangle the stored
                    # line; the CRC check quarantines it on next load.
                    line = plan.corrupt_cache_line(digest, line)
                path = self._shard_path(digest)
        if line is not None:
            # Append outside the in-process mutex: waiting on another
            # process's shard lock must not stall concurrent readers
            # (the serving event loop does lookups under the mutex).
            # Two threads racing a put of the *same* digest may land
            # their lines in either order; since same-digest records can
            # differ only across schema migrations, a load that keeps
            # the older line self-heals via the schema gate on the next
            # get (miss -> re-solve -> re-put).
            with _shard_lock(path), open(path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
            with self._mutex:
                if digest not in self._disk:
                    # A concurrent budget eviction dropped this digest
                    # while we were appending it.  Restore the disk-view
                    # entry: it is the most recently stored record and
                    # stays servable in-memory either way.  If the racing
                    # compaction rewrote the shard *after* our append, the
                    # line itself may be gone — persistence across a
                    # restart is best-effort in this narrow race, never
                    # correctness (a reload just re-solves on miss).
                    self._disk[digest] = record
            self._enforce_disk_budget(stats)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _shard_path(self, digest: str) -> Path:
        assert self._dir is not None
        return self._dir / f"{_CACHE_BASENAME}.{digest[:2]}.jsonl"

    def _insert(
        self,
        digest: str,
        record: dict[str, Any],
        stats: BatchCacheStats | None = None,
    ) -> None:
        stats = stats if stats is not None else self.stats
        self._lru[digest] = record
        self._lru.move_to_end(digest)
        while len(self._lru) > self.max_entries:
            self._lru.popitem(last=False)
            stats.evictions += 1

    def _enforce_disk_budget(self, stats: BatchCacheStats) -> None:
        """Evict cold digests past the budget; may be called lock-free.

        The bookkeeping (LRU pops) runs under :attr:`_mutex`; the shard
        rewrites happen after it is released, so a slow cross-process
        file lock never stalls concurrent in-memory lookups.
        """
        if self.max_disk_entries is None:
            return
        with self._mutex:
            if len(self._disk) <= self.max_disk_entries:
                return
            # Evict slightly below the budget (~1.5% slack) so a store at
            # steady state triggers one compaction per batch of puts rather
            # than a survivor scan + shard rewrite on every single put.
            target = self.max_disk_entries - self.max_disk_entries // 64
            dropped: set[str] = set()
            while len(self._disk) > target:
                evicted, _ = self._disk.popitem(last=False)
                dropped.add(evicted)
                stats.disk_evictions += 1
        self._compact_shards({d[:2] for d in dropped}, dropped)

    def _compact_shards(self, prefixes: set[str], dropped: set[str]) -> None:
        """Rewrite the shards of ``prefixes``, dropping ``dropped`` digests.

        Surviving entries are bucketed by prefix in one pass over a
        mutex-guarded snapshot of the disk view, so a compaction event
        costs O(total entries + lines rewritten) rather than one full
        scan per touched shard — and the file I/O (including waiting on
        other processes' shard locks) runs outside the mutex.
        """
        if not prefixes:
            return
        buckets: dict[str, list[tuple[str, dict[str, Any]]]] = {
            p: [] for p in prefixes
        }
        with self._mutex:
            for digest, record in self._disk.items():
                bucket = buckets.get(digest[:2])
                if bucket is not None:
                    bucket.append((digest, record))
        for prefix in prefixes:
            self._rewrite_shard(prefix, buckets[prefix], dropped)

    def _rewrite_shard(
        self,
        prefix: str,
        survivors: list[tuple[str, dict[str, Any]]],
        dropped: set[str],
    ) -> None:
        """Rewrite one shard from ``survivors``, merging concurrent appends.

        Runs under the shard's advisory file lock, which closes the
        read→replace window: the re-read sees every line concurrent
        writers appended (they hold the same lock to append), any
        current-version digest we neither hold nor just evicted is
        carried over, and no append can land between the read and the
        :func:`os.replace`.
        """
        assert self._dir is not None
        path = self._dir / f"{_CACHE_BASENAME}.{prefix}.jsonl"
        merged = dict(survivors)
        with _shard_lock(path):
            if path.exists():
                on_disk, _, corrupt = self._read_lines(path)
                # Compaction is the one place lines physically leave the
                # shard, so it is also where corrupt ones are preserved.
                self._quarantine_lines(path, corrupt)
                for digest, record in on_disk.items():
                    if digest not in merged and digest not in dropped:
                        merged[digest] = record
            if not merged:
                path.unlink(missing_ok=True)
                return
            tmp = path.with_suffix(".jsonl.tmp")
            with open(tmp, "w", encoding="utf-8") as fh:
                for digest, record in merged.items():
                    fh.write(
                        json.dumps(
                            _envelope(digest, record), separators=(",", ":")
                        )
                        + "\n"
                    )
            os.replace(tmp, path)

    def _quarantine_lines(self, path: Path, lines: list[str]) -> None:
        """Move corrupt raw lines to the shard's ``.quarantine`` sidecar."""
        if not lines:
            return
        qpath = path.with_name(path.name + ".quarantine")
        with open(qpath, "a", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")
        self.stats.corrupt_lines += len(lines)

    def _read_lines(
        self, path: Path
    ) -> tuple[dict[str, dict[str, Any]], bool, list[str]]:
        """Parse one store file; returns (entries, needs_compaction, corrupt).

        ``needs_compaction`` is set for stale-version or corrupt lines
        *and* for digests appearing more than once — two processes that
        both solved a digest before seeing each other's append leave
        duplicated lines (correct, later line wins, but wasted bytes);
        the load pass schedules such shards for a dedupe rewrite.

        ``corrupt`` holds the raw lines that failed to parse or failed
        their CRC: the scheduled compaction moves them to the shard's
        ``.quarantine`` sidecar (stale-*version* lines are expected
        churn, not corruption, and are simply dropped).
        """
        entries: dict[str, dict[str, Any]] = {}
        needs_compaction = False
        corrupt: list[str] = []
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    digest = entry["digest"]
                    record = entry["record"]
                    version = entry["version"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    corrupt.append(line)
                    needs_compaction = True
                    continue
                if version != __version__:
                    needs_compaction = True
                    continue
                if "crc" in entry and entry["crc"] != _crc(digest, record):
                    corrupt.append(line)
                    needs_compaction = True
                    continue
                if "crc" not in entry:
                    # Pre-CRC line (schema 1): trusted as-is, rewritten
                    # with a CRC at the next compaction.
                    needs_compaction = True
                if digest in entries:
                    needs_compaction = True
                entries[digest] = record
        return entries, needs_compaction, corrupt

    def _shard_files(self) -> Iterable[Path]:
        assert self._dir is not None
        # The legacy un-sharded "batch-cache.jsonl" has no prefix token and
        # is deliberately not matched here (it is migrated separately).
        return sorted(
            p
            for p in self._dir.glob(f"{_CACHE_BASENAME}.*.jsonl")
            if p.name != _LEGACY_FILENAME and not p.name.endswith(".tmp")
        )

    def _load_disk(self) -> None:
        assert self._dir is not None
        needs_rewrite: set[str] = set()
        for path in self._shard_files():
            with _shard_lock(path):
                entries, dirty, _ = self._read_lines(path)
            # Shard names are digest prefixes; a two-char suffix like the
            # migrated legacy shards' is always digest[:2].
            prefix = path.name[len(_CACHE_BASENAME) + 1 : -len(".jsonl")]
            if dirty:
                needs_rewrite.add(prefix)
            for digest, record in entries.items():
                self._disk[digest] = record
        legacy = self._dir / _LEGACY_FILENAME
        migrating = legacy.exists()
        if migrating:
            entries, _, _ = self._read_lines(legacy)
            for digest, record in entries.items():
                if digest not in self._disk:
                    self._disk[digest] = record
                needs_rewrite.add(digest[:2])
        dropped: set[str] = set()
        if self.max_disk_entries is not None:
            while len(self._disk) > self.max_disk_entries:
                evicted, _ = self._disk.popitem(last=False)
                dropped.add(evicted)
                needs_rewrite.add(evicted[:2])
                self.stats.disk_evictions += 1
        self._compact_shards(needs_rewrite, dropped)
        if migrating:
            # Unlink only after the shards hold the migrated entries, so
            # a crash mid-migration never loses the legacy store.
            legacy.unlink()
