"""Poison-instance quarantine and failure bisection.

When a solve pool breaks (worker segfault) or overruns its deadline,
the supervising executor attributes the incident to specific canonical
digests (journal marks + a sandboxed probe, see
:mod:`repro.batch.executor`) and registers the culprits here.  A
quarantined digest then *fails fast* with a typed
:class:`~repro.exceptions.QuarantinedError` for a TTL instead of
re-breaking a freshly rebuilt pool on every resubmission — the serving
tier checks the registry before admitting a canonical solve.

:func:`bisect_culprits` is the shared group-failure isolation helper:
given a probe that re-runs a subset of items, it isolates the failing
items in ``O(k log n)`` probes instead of re-running every item alone.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TypeVar

from repro.exceptions import QuarantinedError

__all__ = ["QuarantineEntry", "QuarantineRegistry", "bisect_culprits"]

#: Default quarantine TTL in seconds.
DEFAULT_TTL = 300.0


@dataclass(frozen=True)
class QuarantineEntry:
    """One quarantined digest: why, and until when (monotonic clock)."""

    digest: str
    reason: str
    until: float


class _StatsLike:
    """Structural stand-in for :class:`repro.perf.stats.BatchCacheStats`."""

    quarantined: int
    quarantine_blocked: int


class QuarantineRegistry:
    """Thread-safe TTL registry of digests that broke or hung a pool.

    ``clock`` is injectable for deterministic tests; it must be
    monotonic.  Counter attributes (``added`` / ``blocked`` /
    ``expired``) are cumulative over the registry lifetime; the
    optional ``stats`` argument on :meth:`add` / :meth:`check`
    additionally feeds the pipeline-wide
    :class:`~repro.perf.stats.BatchCacheStats` counters.
    """

    def __init__(
        self,
        ttl: float = DEFAULT_TTL,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"quarantine ttl must be positive, got {ttl}")
        self.ttl = float(ttl)
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: dict[str, QuarantineEntry] = {}
        self.added = 0
        self.blocked = 0
        self.expired = 0

    # -- mutation ------------------------------------------------------

    def add(
        self, digest: str, reason: str, *, stats: _StatsLike | None = None
    ) -> QuarantineEntry:
        """Quarantine ``digest`` for the registry TTL (refreshes if present)."""
        entry = QuarantineEntry(
            digest=digest, reason=reason, until=self._clock() + self.ttl
        )
        with self._lock:
            self._entries[digest] = entry
            self.added += 1
        if stats is not None:
            stats.quarantined += 1
        return entry

    def release(self, digest: str) -> bool:
        """Drop ``digest`` from quarantine; True when it was present."""
        with self._lock:
            return self._entries.pop(digest, None) is not None

    # -- queries -------------------------------------------------------

    def check(self, digest: str, *, stats: _StatsLike | None = None) -> None:
        """Raise :class:`QuarantinedError` when ``digest`` is quarantined.

        Expired entries are purged lazily on touch.
        """
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                return
            remaining = entry.until - self._clock()
            if remaining <= 0:
                del self._entries[digest]
                self.expired += 1
                return
            self.blocked += 1
        if stats is not None:
            stats.quarantine_blocked += 1
        raise QuarantinedError(
            f"digest {digest[:12]} is quarantined ({entry.reason}); "
            f"fails fast for another {remaining:.1f}s",
            digest=digest,
            reason=entry.reason,
        )

    def active(self, digest: str) -> bool:
        """True when ``digest`` is currently quarantined (no side effects
        beyond lazy purge of an expired entry)."""
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                return False
            if entry.until - self._clock() <= 0:
                del self._entries[digest]
                self.expired += 1
                return False
            return True

    def __len__(self) -> int:
        now = self._clock()
        with self._lock:
            return sum(1 for e in self._entries.values() if e.until > now)

    def snapshot(self) -> dict[str, object]:
        """JSON-able view for the serve ``perf`` op and health tables."""
        now = self._clock()
        with self._lock:
            entries = [
                {
                    "digest": e.digest[:12],
                    "reason": e.reason,
                    "ttl_left": round(e.until - now, 3),
                }
                for e in self._entries.values()
                if e.until > now
            ]
            entries.sort(key=lambda item: str(item["digest"]))
            return {
                "active": len(entries),
                "added": self.added,
                "blocked": self.blocked,
                "expired": self.expired,
                "entries": entries,
            }


T = TypeVar("T")


def bisect_culprits(
    items: Sequence[T], probe: Callable[[list[T]], None]
) -> list[tuple[T, Exception]]:
    """Isolate the items that make ``probe`` raise, in ``O(k log n)`` probes.

    ``probe(subset)`` must raise iff the subset contains at least one
    culprit and must be cheap to repeat for non-culprits (in the solve
    pipeline, already-solved digests are answered by the cache, so
    repeated probes cost ~nothing).  Returns ``(item, error)`` pairs in
    original order; an empty probe group is never issued.
    """
    culprits: list[tuple[T, Exception]] = []
    stack: list[list[T]] = [list(items)]
    while stack:
        group = stack.pop()
        if not group:
            continue
        try:
            probe(list(group))
        except Exception as exc:  # noqa: BLE001 — probe errors are the signal
            if len(group) == 1:
                culprits.append((group[0], exc))
            else:
                mid = (len(group) + 1) // 2
                # LIFO: push right half first so the left half is probed
                # next, keeping isolation order aligned with input order.
                stack.append(group[mid:])
                stack.append(group[:mid])
    return culprits
