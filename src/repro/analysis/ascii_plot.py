"""Plain-text plotting.

The benchmark harness regenerates the paper's figures as terminal output:
:func:`line_plot` renders one or more ``(x, y)`` series on a shared axis
(Figures 4, 6, 8–11 and the left panels of 5/7), :func:`bar_plot` renders
integer histograms (right panels of Figures 5/7).  No plotting dependency
is required — output goes straight into ``bench_output.txt``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["line_plot", "bar_plot"]

_MARKERS = "ox+*#%@&"


def line_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 72,
    height: int = 20,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render ``{name: [(x, y), …]}`` series as an ASCII chart.

    Points are mapped onto a ``width × height`` grid; later series overwrite
    earlier ones on collisions (legend shows each marker).  NaN ``y`` values
    are skipped, which lets callers plot partially-defined curves.
    """
    pts = [
        (x, y)
        for s in series.values()
        for x, y in s
        if y == y  # filter NaN
    ]
    if not pts:
        return f"{title}\n(no data)"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return min(width - 1, int((x - x_lo) / (x_hi - x_lo) * (width - 1)))

    def to_row(y: float) -> int:
        return min(height - 1, int((y - y_lo) / (y_hi - y_lo) * (height - 1)))

    legend = []
    for idx, (name, data) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        legend.append(f"{marker}={name}")
        for x, y in data:
            if y != y:
                continue
            grid[height - 1 - to_row(y)][to_col(x)] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"  [{', '.join(legend)}]" + (f"  y: {ylabel}" if ylabel else ""))
    y_top = f"{y_hi:.3g}"
    y_bot = f"{y_lo:.3g}"
    margin = max(len(y_top), len(y_bot))
    for r, row in enumerate(grid):
        label = y_top if r == 0 else (y_bot if r == height - 1 else "")
        lines.append(f"{label:>{margin}} |{''.join(row)}")
    lines.append(" " * margin + " +" + "-" * width)
    x_axis = f"{x_lo:.3g}".ljust(width - 8) + f"{x_hi:.3g}"
    lines.append(" " * (margin + 2) + x_axis + (f"  x: {xlabel}" if xlabel else ""))
    return "\n".join(lines)


def bar_plot(
    counts: Mapping[int, float],
    *,
    width: int = 50,
    title: str = "",
    xlabel: str = "",
) -> str:
    """Render an integer-keyed histogram as horizontal ASCII bars."""
    if not counts:
        return f"{title}\n(no data)"
    peak = max(counts.values()) or 1.0
    lines = []
    if title:
        lines.append(title)
    for key in sorted(counts):
        value = counts[key]
        bar = "#" * max(0, int(round(value / peak * width)))
        lines.append(f"{key:>5} | {bar} {value:.2f}")
    if xlabel:
        lines.append(f"(x: {xlabel})")
    return "\n".join(lines)
