"""Aggregation statistics for experiment series.

Everything the figure runners need to turn per-tree samples into the mean
curves the paper plots, with standard errors so EXPERIMENTS.md can report
uncertainty at reduced replication counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

__all__ = ["SeriesStats", "summarize", "merge_series", "histogram_counts"]


@dataclass(frozen=True)
class SeriesStats:
    """Mean/err summary of one sample set."""

    n: int
    mean: float
    std: float
    stderr: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.stderr:.3f} (n={self.n})"


def summarize(samples: Iterable[float]) -> SeriesStats:
    """Summarise a sample set; empty input yields NaN statistics."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        nan = float("nan")
        return SeriesStats(0, nan, nan, nan, nan, nan)
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return SeriesStats(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=std,
        stderr=std / math.sqrt(arr.size) if arr.size else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def merge_series(parts: Sequence[SeriesStats]) -> SeriesStats:
    """Pool summaries computed on disjoint sample sets.

    Exact for mean/min/max; the pooled standard deviation is recovered from
    per-part sums of squares (parallel-axis theorem), so merging chunked
    results — e.g. from :mod:`repro.experiments.parallel` — matches a
    single-pass :func:`summarize` up to floating-point rounding.
    """
    parts = [p for p in parts if p.n > 0]
    if not parts:
        return summarize([])
    n = sum(p.n for p in parts)
    mean = sum(p.n * p.mean for p in parts) / n
    # Σx² of each part: (n-1)·s² + n·m².
    sum_sq = sum((p.n - 1) * p.std**2 + p.n * p.mean**2 for p in parts)
    var = (sum_sq - n * mean**2) / (n - 1) if n > 1 else 0.0
    std = math.sqrt(max(var, 0.0))
    return SeriesStats(
        n=n,
        mean=mean,
        std=std,
        stderr=std / math.sqrt(n),
        minimum=min(p.minimum for p in parts),
        maximum=max(p.maximum for p in parts),
    )


def histogram_counts(
    samples: Sequence[int], *, lo: int | None = None, hi: int | None = None
) -> dict[int, int]:
    """Integer histogram ``{value: count}`` over an inclusive range.

    The range defaults to ``[min(samples), max(samples)]`` and is padded
    with zero-count entries so plots show gaps (as in Figure 5 right).
    """
    if not samples:
        return {}
    lo = min(samples) if lo is None else lo
    hi = max(samples) if hi is None else hi
    counts = {v: 0 for v in range(lo, hi + 1)}
    for s in samples:
        counts[int(s)] = counts.get(int(s), 0) + 1
    return counts
