"""Result aggregation, text plots and tables for the experiment harness."""

from repro.analysis.ascii_plot import bar_plot, line_plot
from repro.analysis.locality import LocalityReport, locality_report
from repro.analysis.stats import SeriesStats, histogram_counts, merge_series, summarize
from repro.analysis.tables import format_table, to_csv
from repro.analysis.treeview import render_tree

__all__ = [
    "LocalityReport",
    "SeriesStats",
    "bar_plot",
    "format_table",
    "histogram_counts",
    "line_plot",
    "locality_report",
    "merge_series",
    "render_tree",
    "summarize",
    "to_csv",
]
