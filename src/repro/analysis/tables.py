"""Text tables and CSV serialisation for experiment results."""

from __future__ import annotations

import csv
import io
from collections.abc import Iterable, Sequence

__all__ = ["format_table", "to_csv"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render rows as an aligned monospace table.

    Floats are formatted with ``float_fmt``; everything else via ``str``.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths, strict=True)),
        sep,
    ]
    for row in str_rows:
        out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths, strict=True)))
    return "\n".join(out)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Serialise rows to CSV text (used by the CLI ``--csv`` flags)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(row)
    return buf.getvalue()
