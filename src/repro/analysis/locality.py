"""Locality metrics: how far do requests travel to their server?

The *closest* policy exists for locality — electronic/ISP/VOD delivery
wants requests served near the edge (§1).  These metrics quantify that:
per-request hop counts from a client's attachment node up to its serving
replica.  The locality ablation uses them to show what the DP's extra
reuse does (or does not) cost in proximity compared to GR.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping

from repro.core.solution import assign_clients
from repro.tree.model import Tree

__all__ = ["LocalityReport", "locality_report"]


@dataclass(frozen=True)
class LocalityReport:
    """Hop statistics of a placement, weighted by request volume."""

    hop_histogram: Mapping[int, int]  #: hops -> requests served at that distance
    served_requests: int
    unserved_requests: int

    @property
    def mean_hops(self) -> float:
        """Request-weighted mean client-to-server distance."""
        if self.served_requests == 0:
            return float("nan")
        total = sum(h * q for h, q in self.hop_histogram.items())
        return total / self.served_requests

    @property
    def max_hops(self) -> int:
        return max(self.hop_histogram, default=0)

    def fraction_within(self, hops: int) -> float:
        """Fraction of served requests within ``hops`` of their client."""
        if self.served_requests == 0:
            return float("nan")
        near = sum(q for h, q in self.hop_histogram.items() if h <= hops)
        return near / self.served_requests


def locality_report(tree: Tree, replicas: Iterable[int]) -> LocalityReport:
    """Compute hop statistics for a placement.

    Hops count edges from the client's attachment node to the serving
    replica (0 = served on the attachment node itself).
    """
    assignment = assign_clients(tree, replicas)
    histogram: dict[int, int] = {}
    served = 0
    unserved = 0
    for client, server in zip(tree.clients, assignment, strict=True):
        if server is None:
            unserved += client.requests
            continue
        hops = tree.depth(client.node) - tree.depth(server)
        histogram[hops] = histogram.get(hops, 0) + client.requests
        served += client.requests
    return LocalityReport(
        hop_histogram=dict(sorted(histogram.items())),
        served_requests=served,
        unserved_requests=unserved,
    )
