"""ASCII rendering of distribution trees with placements.

Used by the CLI (``repro solve --show``) and handy in notebooks/debugging:
replicas, pre-existing servers, modes and client loads are annotated on a
box-drawing tree.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.tree.model import Tree

__all__ = ["render_tree"]


def render_tree(
    tree: Tree,
    *,
    replicas: Iterable[int] = (),
    preexisting: Iterable[int] = (),
    modes: Mapping[int, int] | None = None,
    loads: Mapping[int, int] | None = None,
    max_nodes: int = 200,
) -> str:
    """Render the tree as text, one node per line.

    Markers: ``[R]`` replica, ``(pre)`` pre-existing server, ``@Wk`` the
    operated mode (1-based, as in the paper), ``<=q`` requests served,
    ``c:r`` attached client load.  Rendering stops after ``max_nodes``
    lines with an ellipsis (big trees are better served by
    :func:`repro.tree.serialize.tree_to_dot`).
    """
    rset = set(replicas)
    pre = set(preexisting)
    modes = dict(modes or {})
    loads = dict(loads or {})
    lines: list[str] = []
    truncated = False

    def label(v: int) -> str:
        parts = [f"n{v}"]
        if v in rset or v in modes:
            parts.append("[R]")
        if v in modes:
            parts.append(f"@W{modes[v] + 1}")
        if v in pre:
            parts.append("(pre)")
        if v in loads:
            parts.append(f"<={loads[v]}")
        cl = tree.client_load(v)
        if cl:
            parts.append(f"c:{cl}")
        return " ".join(parts)

    def walk(v: int, prefix: str, tail: bool, is_root: bool) -> None:
        nonlocal truncated
        if truncated:
            return
        if len(lines) >= max_nodes:
            lines.append(prefix + "...")
            truncated = True
            return
        connector = "" if is_root else ("`- " if tail else "|- ")
        lines.append(prefix + connector + label(v))
        children = tree.children(v)
        child_prefix = prefix if is_root else prefix + ("   " if tail else "|  ")
        for i, c in enumerate(children):
            walk(c, child_prefix, i == len(children) - 1, False)

    walk(tree.root, "", True, True)
    return "\n".join(lines)
